//! End-to-end tests for the `report` binary: `compare` must exit
//! non-zero when a metric moves past the threshold (this is the CI
//! regression gate), zero when everything is within bounds, and
//! `aggregate` must cover every manifest it is given.

use std::path::PathBuf;
use std::process::Command;

fn manifest(bench: &str, cycles: f64) -> String {
    format!(
        "{{\"schema\":1,\"bench\":\"{bench}\",\"config_digest\":\"abc\",\
         \"host\":{{\"wall_time_s\":1.0,\"sim_cycles\":100,\"cycles_per_host_s\":100.0}},\
         \"metrics\":{{\"gpu/cycles\":{cycles},\"gpu/ipc\":2.5}}}}"
    )
}

fn write_set(dir: &PathBuf, cycles: f64) {
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("probe.json"), manifest("probe", cycles)).unwrap();
}

fn report(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_report"))
        .args(args)
        .output()
        .expect("report binary runs")
}

#[test]
fn compare_exits_nonzero_on_breach() {
    let root = std::env::temp_dir().join("gscalar-report-cli-breach");
    let base = root.join("base");
    let cur = root.join("cur");
    write_set(&base, 1000.0);
    write_set(&cur, 1500.0); // +50%, far past the 2% default threshold
    let out = report(&["compare", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert!(
        !out.status.success(),
        "breach must fail the gate; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("result: FAIL"), "got: {text}");
    assert!(text.contains("BREACH"), "got: {text}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn compare_exits_zero_when_identical() {
    let root = std::env::temp_dir().join("gscalar-report-cli-pass");
    let base = root.join("base");
    let cur = root.join("cur");
    write_set(&base, 1000.0);
    write_set(&cur, 1000.0);
    let out = report(&["compare", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "identical sets must pass; stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("result: PASS"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn compare_respects_custom_threshold() {
    let root = std::env::temp_dir().join("gscalar-report-cli-threshold");
    let base = root.join("base");
    let cur = root.join("cur");
    write_set(&base, 1000.0);
    write_set(&cur, 1030.0); // +3%: breaches 2% default, passes 5%
    let fails = report(&["compare", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert!(!fails.status.success());
    let passes = report(&[
        "compare",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--threshold",
        "5",
    ]);
    assert!(
        passes.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&passes.stdout)
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn compare_treats_host_metrics_as_informational() {
    let root = std::env::temp_dir().join("gscalar-report-cli-host");
    let base = root.join("base");
    let cur = root.join("cur");
    let with_host = |cycles: f64, phase_ns: f64| {
        format!(
            "{{\"schema\":1,\"bench\":\"probe\",\"config_digest\":\"abc\",\
             \"host\":{{\"wall_time_s\":1.0,\"sim_cycles\":100,\"cycles_per_host_s\":100.0}},\
             \"metrics\":{{\"gpu/cycles\":{cycles},\
             \"host/phase/execute/ns\":{phase_ns},\
             \"host/pool/steals\":{phase_ns}}}}}"
        )
    };
    std::fs::create_dir_all(&base).unwrap();
    std::fs::create_dir_all(&cur).unwrap();
    // host/* drifts by 10x; the simulated metric is unchanged.
    std::fs::write(base.join("probe.json"), with_host(1000.0, 5_000_000.0)).unwrap();
    std::fs::write(cur.join("probe.json"), with_host(1000.0, 50_000_000.0)).unwrap();
    let out = report(&["compare", base.to_str().unwrap(), cur.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "host-only drift must never gate; stdout: {text}"
    );
    assert!(text.contains("result: PASS"), "got: {text}");
    // The delta is still printed for trend reading.
    assert!(text.contains("host/phase/execute/ns"), "got: {text}");
    // A simulated-metric breach still fails even alongside host noise.
    std::fs::write(cur.join("probe.json"), with_host(1500.0, 50_000_000.0)).unwrap();
    let out = report(&["compare", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("result: FAIL"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn aggregate_covers_every_manifest() {
    let root = std::env::temp_dir().join("gscalar-report-cli-agg");
    std::fs::create_dir_all(&root).unwrap();
    for name in ["alpha", "beta", "gamma"] {
        std::fs::write(root.join(format!("{name}.json")), manifest(name, 500.0)).unwrap();
    }
    let out = report(&["aggregate", root.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["alpha", "beta", "gamma"] {
        assert!(
            text.contains(&format!("## {name}")),
            "missing {name}: {text}"
        );
    }
    assert!(text.contains("3 manifests aggregated"));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn aggregate_separates_host_metrics_from_gated_ones() {
    let root = std::env::temp_dir().join("gscalar-report-cli-agg-host");
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(
        root.join("probe.json"),
        "{\"schema\":1,\"bench\":\"probe\",\"config_digest\":\"abc\",\
         \"host\":{\"wall_time_s\":1.0,\"sim_cycles\":100,\"cycles_per_host_s\":100.0},\
         \"metrics\":{\"gpu/cycles\":1000.0,\
         \"host/phase/execute/ns\":5000000.0,\
         \"host/pool/steals\":42.0}}",
    )
    .unwrap();
    let out = report(&["aggregate", root.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let info = text
        .find("### Informational (host timings, not gated)")
        .unwrap_or_else(|| panic!("no host section: {text}"));
    // The gated table holds only simulated metrics; the host metrics
    // follow in their own section instead of being interleaved.
    assert!(text.find("| gpu/cycles |").unwrap() < info, "got: {text}");
    assert!(
        text.find("| host/phase/execute/ns |").unwrap() > info,
        "got: {text}"
    );
    assert!(
        text.find("| host/pool/steals |").unwrap() > info,
        "got: {text}"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn compare_names_truncated_manifest_and_exits_nonzero() {
    let root = std::env::temp_dir().join("gscalar-report-cli-truncated");
    let base = root.join("base");
    let cur = root.join("cur");
    write_set(&base, 1000.0);
    std::fs::create_dir_all(&cur).unwrap();
    // A manifest cut off mid-write (e.g. a killed run without atomic
    // writes) plus a second, differently-corrupt one: the error must
    // name each offending file, not just the first.
    let full = manifest("probe", 1000.0);
    std::fs::write(cur.join("probe.json"), &full[..full.len() / 2]).unwrap();
    std::fs::write(cur.join("extra.json"), "definitely not json").unwrap();
    let out = report(&["compare", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert!(
        !out.status.success(),
        "corrupt manifests must fail the gate"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("probe.json"), "stderr: {err}");
    assert!(err.contains("extra.json"), "stderr: {err}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn compare_names_missing_manifest_path() {
    let root = std::env::temp_dir().join("gscalar-report-cli-missing");
    let base = root.join("base");
    write_set(&base, 1000.0);
    let gone = root.join("no-such-dir");
    let out = report(&["compare", base.to_str().unwrap(), gone.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no-such-dir"), "stderr: {err}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn unknown_subcommand_exits_with_usage() {
    let out = report(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
