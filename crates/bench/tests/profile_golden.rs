//! Golden-file tests pinning the per-instruction profiler's renderers
//! on the shared divergent example kernel (Figure 7b shape): the
//! annotated disassembly and the hotspot/divergence markdown must be
//! byte-stable run to run — the simulator is deterministic and the
//! per-PC tables iterate in PC order — and any format change must be
//! deliberate. Regenerate with:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test -p gscalar-bench --test profile_golden
//! ```

use std::path::PathBuf;

use gscalar_core::{Arch, Runner};
use gscalar_profile::{annotate, branch_markdown, hotspot_markdown, KernelProfile};
use gscalar_sim::GpuConfig;
use gscalar_workloads::divergent_example;

fn profiled_fixture() -> (gscalar_core::Workload, KernelProfile) {
    let w = divergent_example();
    let run = Runner::new(GpuConfig::test_small()).run_profiled(&w, Arch::GScalar);
    (w, run.profile)
}

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "profiler output drifted from {}; if intentional, regenerate with GOLDEN_REGEN=1",
        path.display()
    );
}

#[test]
fn annotated_disassembly_matches_golden() {
    let (w, profile) = profiled_fixture();
    check_golden("profile_annotated.txt", &annotate(&w.kernel, &profile));
}

#[test]
fn hotspot_and_branch_reports_match_golden() {
    let (w, profile) = profiled_fixture();
    let md = format!(
        "{}\n{}",
        hotspot_markdown(&w.kernel, &profile, 10),
        branch_markdown(&w.kernel, &profile)
    );
    check_golden("profile_hotspots.md", &md);
}

#[test]
fn every_executed_pc_is_annotated() {
    let (w, profile) = profiled_fixture();
    let annotated = annotate(&w.kernel, &profile);
    // Every executed PC must appear with a real issue count (column 2),
    // not the `-` placeholder of never-issued lines.
    for pc in profile.executed_pcs() {
        let line = annotated
            .lines()
            .find(|l| {
                l.split_whitespace()
                    .next()
                    .is_some_and(|c| c.parse::<usize>() == Ok(pc))
            })
            .unwrap_or_else(|| panic!("pc {pc} missing from annotated disassembly"));
        let issues: u64 = line
            .split_whitespace()
            .nth(1)
            .expect("issue column present")
            .parse()
            .expect("executed pc has a numeric issue count");
        assert_eq!(issues, profile.record(pc).issues);
    }
}
