//! Shared harness utilities for the figure/table binaries.

use gscalar_core::{Arch, RunReport, Runner, Workload};
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};

/// Formats a row of right-aligned numeric cells after a left-aligned
/// label.
#[must_use]
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<12}");
    for c in cells {
        s.push_str(&format!("{c:>12}"));
    }
    s
}

/// Arithmetic mean (0.0 for an empty slice).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs the full suite on one architecture, returning per-benchmark
/// reports in Table 2 order.
#[must_use]
pub fn run_suite(arch: Arch, cfg: &GpuConfig) -> Vec<(String, RunReport)> {
    let runner = Runner::new(cfg.clone());
    suite(Scale::Full)
        .iter()
        .map(|w| (w.abbr.clone(), runner.run(w, arch)))
        .collect()
}

/// Runs one workload on every Figure 11 architecture.
#[must_use]
pub fn run_workload_all_archs(w: &Workload, cfg: &GpuConfig) -> Vec<RunReport> {
    Runner::new(cfg.clone()).run_all(w)
}
