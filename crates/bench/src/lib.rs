//! Shared harness utilities for the figure/table binaries.
//!
//! Every bench binary builds on [`Report`]: it prints the same
//! human-readable tables as before *and*, when invoked with `--json
//! [path]`, writes a machine-readable [`Manifest`] next to the text
//! output (default `results/<bench>.json`). The `report` binary
//! aggregates those manifests into a dashboard and compares two sets as
//! a regression gate.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

use gscalar_core::{Arch, RunReport, Runner, Workload};
use gscalar_metrics::{fnv1a_hex, Manifest};
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};

pub mod experiments;

/// Formats a row of right-aligned numeric cells after a left-aligned
/// label.
#[must_use]
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<12}");
    for c in cells {
        s.push_str(&format!("{c:>12}"));
    }
    s
}

/// Arithmetic mean (0.0 for an empty slice).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs the full suite on one architecture, returning per-benchmark
/// reports in Table 2 order.
#[must_use]
pub fn run_suite(arch: Arch, cfg: &GpuConfig) -> Vec<(String, RunReport)> {
    let runner = Runner::new(cfg.clone());
    suite(Scale::Full)
        .iter()
        .map(|w| (w.abbr.clone(), runner.run(w, arch)))
        .collect()
}

/// Runs one workload on every Figure 11 architecture.
#[must_use]
pub fn run_workload_all_archs(w: &Workload, cfg: &GpuConfig) -> Vec<RunReport> {
    Runner::new(cfg.clone()).run_all(w)
}

/// Parses an optional `--scale test|full` argument (default full).
#[must_use]
pub fn parse_scale() -> Scale {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            return match args.next().as_deref() {
                Some("test") => Scale::Test,
                _ => Scale::Full,
            };
        }
    }
    Scale::Full
}

/// The shared result emitter of every bench binary: prints the familiar
/// text tables and accumulates a [`Manifest`] of every numeric cell,
/// written as JSON at [`Report::finish`] when the binary was invoked
/// with `--json [path]`.
///
/// # Examples
///
/// ```
/// use gscalar_bench::Report;
///
/// let mut r = Report::from_args("demo", ["--json", "/tmp/demo-doc.json"]);
/// r.title("Demo table");
/// r.table(&["colA", "colB"]);
/// r.row("BP", &[1.25, 3.0], |x| format!("{x:.2}"));
/// r.add_cycles(1000);
/// let manifest = r.finish().unwrap();
/// assert_eq!(manifest.get("BP/colA"), Some(1.25));
/// assert_eq!(manifest.host.sim_cycles, 1000);
/// std::fs::remove_file("/tmp/demo-doc.json").ok();
/// ```
pub struct Report {
    manifest: Manifest,
    json_path: Option<PathBuf>,
    start: Instant,
    sim_cycles: u64,
    columns: Vec<String>,
    deterministic: bool,
    out: Box<dyn Write>,
}

impl std::fmt::Debug for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Report")
            .field("manifest", &self.manifest)
            .field("json_path", &self.json_path)
            .field("sim_cycles", &self.sim_cycles)
            .field("deterministic", &self.deterministic)
            .finish_non_exhaustive()
    }
}

impl Report {
    /// Creates a report for `bench`, reading `--json [path]` and
    /// `--deterministic` from the process arguments.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        Self::from_args(bench, std::env::args().skip(1))
    }

    /// [`Report::new`] with explicit arguments (for tests). Delegates
    /// flag parsing to [`experiments::CliOptions`], the single parser
    /// for the shared flag set.
    #[must_use]
    pub fn from_args<I, S>(bench: &str, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::from_options(bench, &experiments::CliOptions::parse(args))
    }

    /// Creates a report for `bench` from already-parsed options
    /// (`--json` path resolution and `--deterministic`).
    #[must_use]
    pub fn from_options(bench: &str, opts: &experiments::CliOptions) -> Self {
        let mut r = Self::to_writer(bench, opts.json_path(bench), Box::new(std::io::stdout()));
        r.deterministic = opts.deterministic;
        r
    }

    /// Creates a report whose table text goes to `out` instead of
    /// stdout and whose manifest (if `json_path` is set) is written at
    /// [`Report::finish`]. This is how the `sweep` binary renders every
    /// experiment into `<out>/<bench>.txt` + `<out>/<bench>.json`.
    #[must_use]
    pub fn to_writer(bench: &str, json_path: Option<PathBuf>, out: Box<dyn Write>) -> Self {
        Report {
            manifest: Manifest::new(bench),
            json_path,
            start: Instant::now(),
            sim_cycles: 0,
            columns: Vec::new(),
            deterministic: false,
            out,
        }
    }

    /// Switches deterministic manifests on: [`Report::finish`] zeroes
    /// the host wall-clock fields (keeping simulated cycles), so the
    /// written JSON is byte-identical across machines, thread counts,
    /// and runs. The sweep pipeline always renders deterministically;
    /// the standalone binaries opt in via `--deterministic`.
    pub fn set_deterministic(&mut self, on: bool) {
        self.deterministic = on;
    }

    /// Whether deterministic output is on (renders consult this to
    /// suppress wall-clock columns in their text output too).
    #[must_use]
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// Prints a title/heading line.
    pub fn title(&mut self, text: &str) {
        let _ = writeln!(self.out, "{text}");
    }

    /// Prints a free-form note line (closing commentary, paper targets).
    pub fn note(&mut self, text: &str) {
        let _ = writeln!(self.out, "{text}");
    }

    /// Prints a blank separator line.
    pub fn blank(&mut self) {
        let _ = writeln!(self.out);
    }

    /// Records the hardware configuration digest in the manifest.
    ///
    /// `exec_threads` is an execution-engine knob, not modeled
    /// hardware, and the parallel engine is byte-identical to serial —
    /// so it is normalized out before hashing and manifests stay
    /// comparable across `--sim-threads` settings.
    pub fn config(&mut self, cfg: &GpuConfig) {
        let mut cfg = cfg.clone();
        cfg.exec_threads = 1;
        self.manifest.config_digest = fnv1a_hex(&format!("{cfg:?}"));
    }

    /// Prints a table header and remembers the column names for
    /// [`Report::row`] metric paths.
    pub fn table(&mut self, cols: &[&str]) {
        self.columns = cols.iter().map(|c| (*c).to_string()).collect();
        let cells: Vec<String> = cols.iter().map(|c| (*c).to_string()).collect();
        let _ = writeln!(self.out, "{}", row("bench", &cells));
    }

    /// Prints one table row (each value through `fmt`) and records every
    /// cell as metric `<label>/<column>`.
    pub fn row(&mut self, label: &str, vals: &[f64], fmt: impl Fn(f64) -> String) {
        assert_eq!(
            vals.len(),
            self.columns.len(),
            "row {label} has {} cells for {} columns",
            vals.len(),
            self.columns.len()
        );
        let cells: Vec<String> = vals.iter().map(|&v| fmt(v)).collect();
        let _ = writeln!(self.out, "{}", row(label, &cells));
        let cols = self.columns.clone();
        for (col, &v) in cols.iter().zip(vals) {
            self.metric(&format!("{label}/{col}"), v);
        }
    }

    /// Prints a row of pre-formatted cells without recording metrics
    /// (mixed-format rows record via [`Report::metric`] themselves).
    pub fn row_text(&mut self, label: &str, cells: &[String]) {
        let _ = writeln!(self.out, "{}", row(label, cells));
    }

    /// Records one metric in the manifest.
    pub fn metric(&mut self, path: &str, value: f64) {
        self.manifest.set(path, value);
    }

    /// Records the headline statistics of one run under `prefix`:
    /// cycles, IPC, power, instruction mix, scalar-class breakdown,
    /// stall breakdown, and per-component energy. Also accumulates the
    /// run's cycles into the host profile.
    pub fn record_run(&mut self, prefix: &str, r: &RunReport) {
        self.add_cycles(r.stats.cycles);
        for (path, value) in run_metrics(prefix, r) {
            self.manifest.set(path, value);
        }
    }

    /// Accumulates simulated cycles into the host self-profile.
    pub fn add_cycles(&mut self, cycles: u64) {
        self.sim_cycles += cycles;
    }

    /// Finalizes the manifest: fills the host profile and, when `--json`
    /// was given, writes the JSON file (creating parent directories).
    /// Returns the manifest for inspection.
    ///
    /// Deterministic mode zeroes the wall-clock fields in the main
    /// manifest (so it stays byte-identical across machines) but does
    /// not discard them: the real timings go to a `<stem>.host.json`
    /// side channel next to the manifest, which determinism gates
    /// (`cmp`) and [`load_manifests`] both ignore.
    ///
    /// # Panics
    ///
    /// Panics when the JSON file cannot be written — a bench invoked
    /// with `--json` must not silently produce nothing.
    pub fn finish(mut self) -> Option<Manifest> {
        let wall = self.start.elapsed().as_secs_f64();
        let real_host = gscalar_metrics::HostProfile {
            wall_time_s: wall,
            sim_cycles: self.sim_cycles,
            cycles_per_host_s: if wall <= 0.0 {
                0.0
            } else {
                self.sim_cycles as f64 / wall
            },
        };
        self.manifest.host = if self.deterministic {
            gscalar_metrics::HostProfile {
                wall_time_s: 0.0,
                sim_cycles: self.sim_cycles,
                cycles_per_host_s: 0.0,
            }
        } else {
            real_host.clone()
        };
        // Host-time phase breakdown rides in the manifest only when it
        // cannot perturb determinism; otherwise it goes to the side
        // channel below.
        if !self.deterministic && gscalar_hostprof::enabled() {
            for (path, v) in gscalar_hostprof::snapshot().flatten() {
                self.manifest.set(path, v);
            }
        }
        if let Some(path) = &self.json_path {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)
                        .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
                }
            }
            std::fs::write(path, self.manifest.to_json())
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
            if self.deterministic {
                let side_path = path.with_extension("host.json");
                let side = host_side_channel(&self.manifest.bench, &real_host);
                std::fs::write(&side_path, side.to_json())
                    .unwrap_or_else(|e| panic!("writing {}: {e}", side_path.display()));
            }
        }
        Some(self.manifest)
    }
}

/// Builds the `<stem>.host.json` side-channel manifest: the real host
/// profile a deterministic run measured, plus the hostprof phase/pool
/// breakdown when profiling is enabled. Every metric lives under
/// `host/`, so `report compare` treats the whole file as informational.
#[must_use]
pub fn host_side_channel(bench: &str, real: &gscalar_metrics::HostProfile) -> Manifest {
    let mut side = Manifest::new(format!("{bench}.host"));
    side.host = real.clone();
    side.set("host/wall_time_s", real.wall_time_s);
    side.set("host/sim_cycles", real.sim_cycles as f64);
    side.set("host/cycles_per_host_s", real.cycles_per_host_s);
    if gscalar_hostprof::enabled() {
        for (path, v) in gscalar_hostprof::snapshot().flatten() {
            side.set(path, v);
        }
    }
    side
}

/// The exact metric set [`Report::record_run`] emits, as `(path,
/// value)` pairs. Sweep jobs use this directly so a run recorded
/// through a [`gscalar_sweep::JobOutput`] carries the same keys and
/// values as one recorded through a `Report`.
#[must_use]
pub fn run_metrics(prefix: &str, r: &RunReport) -> Vec<(String, f64)> {
    let s = &r.stats;
    let i = &s.instr;
    let mut out: Vec<(String, f64)> = vec![
        (format!("{prefix}/cycles"), s.cycles as f64),
        (format!("{prefix}/ipc"), s.ipc()),
        (format!("{prefix}/warp_ipc"), s.warp_ipc()),
        (
            format!("{prefix}/divergent_fraction"),
            s.divergent_fraction(),
        ),
        (format!("{prefix}/power_total_w"), r.power.total_w()),
        (format!("{prefix}/ipc_per_watt"), r.ipc_per_watt()),
        (format!("{prefix}/instr/warp"), i.warp_instrs as f64),
        (format!("{prefix}/instr/thread"), i.thread_instrs as f64),
        (format!("{prefix}/instr/alu"), i.alu_instrs as f64),
        (format!("{prefix}/instr/sfu"), i.sfu_instrs as f64),
        (format!("{prefix}/instr/mem"), i.mem_instrs as f64),
        (format!("{prefix}/instr/ctrl"), i.ctrl_instrs as f64),
        (
            format!("{prefix}/instr/divergent"),
            i.divergent_instrs as f64,
        ),
        (
            format!("{prefix}/scalar/eligible_alu"),
            i.eligible_alu as f64,
        ),
        (
            format!("{prefix}/scalar/eligible_sfu"),
            i.eligible_sfu as f64,
        ),
        (
            format!("{prefix}/scalar/eligible_mem"),
            i.eligible_mem as f64,
        ),
        (
            format!("{prefix}/scalar/eligible_half"),
            i.eligible_half as f64,
        ),
        (
            format!("{prefix}/scalar/eligible_divergent"),
            i.eligible_divergent as f64,
        ),
        (
            format!("{prefix}/scalar/executed_scalar"),
            i.executed_scalar as f64,
        ),
        (
            format!("{prefix}/scalar/executed_half"),
            i.executed_half as f64,
        ),
    ];
    for (reason, count) in s.pipe.stalls.iter() {
        out.push((format!("{prefix}/stall/{}", reason.label()), count as f64));
    }
    // Energy by component: power × runtime (the linear accounting
    // the telemetry invariant is built on).
    for (name, w) in &r.power.components {
        out.push((
            format!("{prefix}/energy/{name}_pj"),
            w * r.power.runtime_s * 1e12,
        ));
    }
    out.push((
        format!("{prefix}/energy/static_pj"),
        r.power.static_w * r.power.runtime_s * 1e12,
    ));
    out
}

/// Loads manifests from `path`: a single `.json` file or a directory
/// (every `*.json` inside, sorted by file name). `*.host.json`
/// side-channel files are skipped: they carry real wall-clock timings
/// next to deterministic manifests and must never enter a regression
/// comparison set.
///
/// # Errors
///
/// Returns a message when the path is unreadable or any file fails to
/// load. Every bad file in a directory is reported — one line per
/// file — rather than stopping at the first, so a single corrupt
/// manifest in a results directory pinpoints itself immediately.
pub fn load_manifests(path: &Path) -> Result<Vec<Manifest>, String> {
    if path.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .filter(|p| {
                !p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(".host.json"))
            })
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("no *.json manifests in {}", path.display()));
        }
        let mut loaded = Vec::new();
        let mut errors = Vec::new();
        for p in &files {
            match Manifest::load(p) {
                Ok(m) => loaded.push(m),
                Err(e) => errors.push(e),
            }
        }
        if errors.is_empty() {
            Ok(loaded)
        } else {
            Err(errors.join("\n"))
        }
    } else {
        Ok(vec![Manifest::load(path)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_without_json_flag_writes_nothing() {
        let r = Report::from_args("x", Vec::<String>::new());
        assert!(r.json_path.is_none());
        let m = r.finish().unwrap();
        assert_eq!(m.bench, "x");
    }

    #[test]
    fn report_json_default_path_is_results_dir() {
        let r = Report::from_args("fig99", ["--json"]);
        assert_eq!(
            r.json_path.as_deref(),
            Some(Path::new("results/fig99.json"))
        );
    }

    #[test]
    fn row_records_label_column_metrics() {
        let mut r = Report::from_args("t", Vec::<String>::new());
        r.table(&["a%", "b%"]);
        r.row("BP", &[1.0, 2.0], |x| format!("{x:.1}"));
        r.row("AVG", &[1.5, 2.5], |x| format!("{x:.1}"));
        let m = r.finish().unwrap();
        assert_eq!(m.get("BP/a%"), Some(1.0));
        assert_eq!(m.get("AVG/b%"), Some(2.5));
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("gscalar-bench-test");
        let path = dir.join("roundtrip.json");
        let mut r = Report::from_args("rt", ["--json".to_string(), path.display().to_string()]);
        r.metric("k", 4.25);
        r.config(&GpuConfig::test_small());
        r.add_cycles(123);
        let written = r.finish().unwrap();
        let loaded = load_manifests(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0], written);
        assert_eq!(loaded[0].get("k"), Some(4.25));
        assert_eq!(loaded[0].host.sim_cycles, 123);
        assert_eq!(loaded[0].config_digest.len(), 16);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_finish_zeroes_host_wall_time() {
        let mut r = Report::from_args("d", ["--deterministic"]);
        r.add_cycles(500);
        let m = r.finish().unwrap();
        assert_eq!(m.host.wall_time_s, 0.0);
        assert_eq!(m.host.cycles_per_host_s, 0.0);
        assert_eq!(m.host.sim_cycles, 500);
    }

    #[test]
    fn deterministic_finish_writes_real_timing_side_channel() {
        let dir = std::env::temp_dir().join("gscalar-bench-hostside");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("probe.json");
        let mut r = Report::from_args(
            "probe",
            [
                "--json".to_string(),
                path.display().to_string(),
                "--deterministic".to_string(),
            ],
        );
        r.metric("k", 1.0);
        r.add_cycles(777);
        let m = r.finish().unwrap();
        assert_eq!(m.host.wall_time_s, 0.0, "main manifest stays zeroed");
        let side = Manifest::load(&dir.join("probe.host.json")).unwrap();
        assert_eq!(side.bench, "probe.host");
        assert_eq!(side.host.sim_cycles, 777);
        assert!(side.host.wall_time_s > 0.0, "side channel keeps real time");
        assert_eq!(side.get("host/sim_cycles"), Some(777.0));
        // The side channel never contaminates a directory load.
        let loaded = load_manifests(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].bench, "probe");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_manifests_reports_every_bad_file() {
        let dir = std::env::temp_dir().join("gscalar-bench-badload");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut good = Report::from_args(
            "ok",
            [
                "--json".to_string(),
                dir.join("ok.json").display().to_string(),
            ],
        );
        good.metric("k", 1.0);
        good.finish();
        std::fs::write(dir.join("bad1.json"), "{\"schema\":").unwrap();
        std::fs::write(dir.join("bad2.json"), "not json").unwrap();
        let err = load_manifests(&dir).unwrap_err();
        assert!(err.contains("bad1.json"), "got: {err}");
        assert!(err.contains("bad2.json"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_run_covers_headline_and_breakdowns() {
        use gscalar_isa::{KernelBuilder, LaunchConfig, Operand, SReg};
        let mut b = KernelBuilder::new("k");
        let tid = b.s2r(SReg::TidX);
        b.iadd(tid.into(), Operand::Imm(1));
        b.exit();
        let w = Workload::new(
            "k",
            "K",
            b.build().unwrap(),
            LaunchConfig::linear(1, 32),
            gscalar_sim::memory::GlobalMemory::new(),
        );
        let report = Runner::new(GpuConfig::test_small()).run(&w, Arch::GScalar);
        let mut r = Report::from_args("t", Vec::<String>::new());
        r.record_run("K", &report);
        let m = r.finish().unwrap();
        assert_eq!(m.get("K/cycles"), Some(report.stats.cycles as f64));
        assert!(m.get("K/instr/warp").is_some());
        assert!(m.get("K/scalar/eligible_alu").is_some());
        assert!(m.get("K/stall/drained").is_some());
        assert!(m.get("K/energy/register-file_pj").is_some());
        assert_eq!(m.host.sim_cycles, report.stats.cycles);
    }
}
