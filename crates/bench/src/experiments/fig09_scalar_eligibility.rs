//! Figure 9: percentage of instructions eligible for scalar execution,
//! cumulative over the paper's categories.

use gscalar_core::Arch;
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::{mean, Report};

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "fig09_scalar_eligibility";

/// Cumulative eligibility columns.
const COLS: [&str; 4] = ["ALU%", "all%", "half%", "diverg%"];

/// One job per benchmark: a baseline run reduced to the four
/// cumulative eligibility percentages.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let runner = gscalar_core::Runner::new(GpuConfig::gtx480());
        let mut sim = JobSim::new(ctx);
        let report = sim.run(&runner, w, Arch::Baseline)?;
        let i = &report.stats.instr;
        let wi = i.warp_instrs as f64;
        let alu = 100.0 * i.eligible_alu as f64 / wi;
        let all = alu + 100.0 * (i.eligible_sfu + i.eligible_mem) as f64 / wi;
        let half = all + 100.0 * i.eligible_half as f64 / wi;
        let div = half + 100.0 * i.eligible_divergent as f64 / wi;
        let mut out = JobOutput {
            sim_cycles: report.stats.cycles,
            ..JobOutput::default()
        };
        for (col, v) in COLS.iter().zip([alu, all, half, div]) {
            out.metric(*col, v);
        }
        Ok(out)
    })
}

/// Renders the cumulative eligibility table from job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Figure 9: instructions eligible for scalar execution (cumulative)");
    r.table(&COLS);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); COLS.len()];
    for w in suite(scale) {
        let vals: Vec<f64> = COLS.iter().map(|c| rs.metric(NAME, &w.abbr, c)).collect();
        for (c, v) in cols.iter_mut().zip(&vals) {
            c.push(*v);
        }
        r.row(&w.abbr, &vals, |x| format!("{x:.1}"));
    }
    let avg: Vec<f64> = cols.iter().map(|c| mean(c)).collect();
    r.row("AVG", &avg, |x| format!("{x:.1}"));
    r.blank();
    r.note("paper: ALU scalar 22%; +7% SFU/memory; +2% half; +9% divergent = 40%.");
    r.add_cycles(rs.sim_cycles(NAME));
}
