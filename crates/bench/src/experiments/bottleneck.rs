//! Cycle-accounting dashboard: CPI stacks, critical-path attribution,
//! and validated what-if projections (see `gscalar-analyze`).
//!
//! One job per benchmark. The baseline simulation runs once with the
//! event tracer and a per-SM observer attached, yielding — from a
//! single run — the merged and per-SM scheduler ledgers (CPI stacks),
//! the stall-event stream (critical-path chains) and the MSHR occupancy
//! histogram (MLP profile). Every stack is then *reconciled*: kernel,
//! per-SM and per-scheduler views must all sum exactly to their
//! elapsed slots, and any breach fails the job (and the binary exits
//! nonzero). Finally each [`WhatIf`] idealization is projected
//! analytically from the stack and validated by a real re-simulation
//! with the corresponding [`gscalar_sim::IdealConfig`] knob flipped,
//! with the per-kernel projection error recorded in the manifest.

use gscalar_analyze::{analyze_trace, CpiStack, MlpProfile, Projection, WhatIf, COMPONENT_LABELS};
use gscalar_core::Arch;
use gscalar_sim::{Gpu, GpuConfig, RunObserver, Stats};
use gscalar_sweep::{JobError, JobOutput, JobSpec, ResultSet};
use gscalar_trace::{EventBuf, Tracer};
use gscalar_workloads::{suite, Scale};

use crate::Report;

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "bottleneck";

/// Bounded event-ring capacity for the critical-path trace. The ring
/// keeps the newest events, so a long run analyzes its tail — where the
/// drain bottlenecks live. Bounded and deterministic.
const TRACE_CAPACITY: usize = 1 << 16;

/// How many chains / culprit warps the manifest keeps per benchmark.
const TOP: usize = 4;

/// Captures the per-SM statistics the run's `finish` callback exposes.
#[derive(Default)]
struct PerSmCapture {
    per_sm: Vec<Stats>,
}

impl RunObserver for PerSmCapture {
    fn sample(&mut self, _cycle: u64, _stats: &Stats) {}

    fn finish(&mut self, _cycle: u64, _merged: &Stats, per_sm: &[Stats]) {
        self.per_sm = per_sm.to_vec();
    }
}

/// One job per benchmark: baseline traced run + 4 idealized re-runs.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let cfg = GpuConfig::gtx480();
        let mut sim = JobSim::new(ctx);

        // Baseline: one simulation feeding all three analyses.
        let mut gpu = Gpu::new(cfg.clone(), Arch::Baseline.config());
        let mut mem = w.memory.clone();
        let mut buf = EventBuf::new(TRACE_CAPACITY);
        let mut capture = PerSmCapture::default();
        let stats = {
            let mut tracer = Tracer::new(&mut buf);
            gpu.run_observed(
                &w.kernel,
                w.launch,
                &mut mem,
                &mut tracer,
                0,
                0,
                &mut capture,
            )
        };
        sim.charge(stats.cycles)?;

        // CPI stacks at every granularity, all hard-reconciled.
        let stack = CpiStack::kernel(&stats, cfg.num_sms);
        let breach = |view: &str, e: gscalar_analyze::ReconcileError| {
            JobError::Failed(format!("{}: {view} {e}", w.abbr))
        };
        stack.reconcile().map_err(|e| breach("kernel", e))?;
        for (i, sm_stats) in capture.per_sm.iter().enumerate() {
            CpiStack::sm(sm_stats, stats.cycles)
                .reconcile()
                .map_err(|e| breach(&format!("sm{i}"), e))?;
            for (s, sc) in sm_stats.sched.iter().enumerate() {
                CpiStack::scheduler(sc, stats.cycles, 1)
                    .reconcile()
                    .map_err(|e| breach(&format!("sm{i}/sched{s}"), e))?;
            }
        }

        // Critical path + MLP from the same run.
        let records = buf.into_records();
        let cp = analyze_trace(&records, TOP);
        let mlp = MlpProfile::from_stats(&stats);

        let mut out = JobOutput::default();
        let p = |k: &str| format!("{}/{k}", w.abbr);
        out.metric(p("cycles"), stats.cycles as f64);
        out.metric(p("cpi/ledgers"), stack.ledgers as f64);
        for (label, n) in stack.components() {
            out.metric(p(&format!("cpi/{label}")), n as f64);
        }
        for (label, share) in COMPONENT_LABELS.iter().zip(stack.shares()) {
            out.metric(p(&format!("cpi/{label}_share")), share);
        }
        // Per-scheduler stacks from the merged ledgers (summed over
        // SMs), so scheduler imbalance is visible in the manifest.
        for (s, sc) in stats.sched.iter().enumerate() {
            let sst = CpiStack::scheduler(sc, stats.cycles, cfg.num_sms as u64);
            sst.reconcile()
                .map_err(|e| breach(&format!("sched{s}"), e))?;
            for (label, n) in sst.components() {
                out.metric(p(&format!("cpi/sched{s}/{label}")), n as f64);
            }
        }
        out.metric(p("critical/stall_events"), cp.stall_events as f64);
        for (reason, n) in cp.by_reason.iter() {
            out.metric(p(&format!("critical/events/{}", reason.label())), n as f64);
        }
        out.metric(
            p("critical/top_chain_cycles"),
            cp.chains.first().map_or(0, |c| c.len()) as f64,
        );
        out.metric(
            p("critical/top_warp_cycles"),
            cp.top_warps.first().map_or(0, |w| w.cycles) as f64,
        );
        out.metric(p("mlp/samples"), mlp.samples as f64);
        out.metric(p("mlp/mean"), mlp.mean);
        out.metric(p("mlp/max"), mlp.max as f64);

        // What-if studies: analytic projection vs a real idealized run.
        for wi in WhatIf::ALL {
            let ideal_cfg = wi.apply(&cfg);
            let ideal = sim.run_stats(&ideal_cfg, Arch::Baseline.config(), w)?;
            let proj = Projection::new(wi, &stack, &stats, &cfg, ideal.cycles);
            let l = wi.label();
            out.metric(p(&format!("whatif/{l}/ideal_cycles")), ideal.cycles as f64);
            out.metric(p(&format!("whatif/{l}/projected")), proj.projected);
            out.metric(p(&format!("whatif/{l}/measured")), proj.measured);
            out.metric(p(&format!("whatif/{l}/error")), proj.error());
        }
        out.sim_cycles = sim.used();
        Ok(out)
    })
}

/// Renders the markdown dashboard from job metrics only: the CPI-stack
/// table (shares of all issue slots), the critical-path/MLP table, and
/// the validated what-if table with per-kernel projection error.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("# Bottleneck dashboard");
    r.blank();
    r.note("## CPI stacks (share of all issue slots)");
    r.blank();
    r.note("| bench | base% | sbrd% | mem% | barr% | drain% | opc% | struct% | bottleneck |");
    r.note("|---|---|---|---|---|---|---|---|---|");
    for w in suite(scale) {
        let g = |k: &str| rs.metric(NAME, &w.abbr, &format!("{}/{}", w.abbr, k));
        let shares: Vec<f64> = COMPONENT_LABELS
            .iter()
            .map(|l| g(&format!("cpi/{l}_share")))
            .collect();
        // Headline bottleneck: the largest stall share (base_issue
        // excluded), ties to the earlier label — same rule as
        // `CpiStack::top_bottleneck`, recomputed from manifest metrics.
        let (top_label, _) = COMPONENT_LABELS.iter().zip(shares.iter()).skip(1).fold(
            ("scoreboard", f64::MIN),
            |best, (l, &s)| {
                if s > best.1 {
                    (l, s)
                } else {
                    best
                }
            },
        );
        r.note(&format!(
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {} |",
            w.abbr,
            100.0 * shares[0],
            100.0 * shares[1],
            100.0 * shares[2],
            100.0 * shares[3],
            100.0 * shares[4],
            100.0 * shares[5],
            100.0 * shares[6],
            top_label,
        ));
    }
    r.blank();
    r.note("## Critical path and memory-level parallelism");
    r.blank();
    r.note("| bench | stall events | top chain (cyc) | top warp (cyc) | MLP mean | MLP max |");
    r.note("|---|---|---|---|---|---|");
    for w in suite(scale) {
        let g = |k: &str| rs.metric(NAME, &w.abbr, &format!("{}/{}", w.abbr, k));
        r.note(&format!(
            "| {} | {} | {} | {} | {:.2} | {} |",
            w.abbr,
            g("critical/stall_events"),
            g("critical/top_chain_cycles"),
            g("critical/top_warp_cycles"),
            g("mlp/mean"),
            g("mlp/max"),
        ));
    }
    r.blank();
    r.note("## What-if projections (analytic vs re-simulated)");
    r.blank();
    r.note("| bench | study | projected | measured | error% |");
    r.note("|---|---|---|---|---|");
    for w in suite(scale) {
        let g = |k: &str| rs.metric(NAME, &w.abbr, &format!("{}/{}", w.abbr, k));
        for wi in WhatIf::ALL {
            let l = wi.label();
            r.note(&format!(
                "| {} | {} | {:.3}x | {:.3}x | {:.1} |",
                w.abbr,
                l,
                g(&format!("whatif/{l}/projected")),
                g(&format!("whatif/{l}/measured")),
                100.0 * g(&format!("whatif/{l}/error")),
            ));
        }
    }
    // The manifest copies every job metric through verbatim, so the
    // JSON carries the full per-kernel stacks and projection errors.
    for w in suite(scale) {
        let jr = rs.get(NAME, &w.abbr).expect("job result present");
        for (k, v) in &jr.metrics {
            r.metric(k, *v);
        }
    }
    r.add_cycles(rs.sim_cycles(NAME));
}
