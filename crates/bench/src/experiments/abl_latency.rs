//! Ablation: sensitivity to the compression pipeline depth.
//!
//! The paper adds 3 cycles (compress, decompress, EBR/BVR read) and
//! reports a 1.7% mean IPC loss (Section 5.4). This sweep varies the
//! added depth to show how much headroom the latency-hiding gives.

use gscalar_core::Arch;
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::{mean, Report};

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "abl_latency";

/// The swept extra pipeline depths.
const DEPTHS: [u64; 5] = [0, 1, 3, 6, 12];

fn col(d: u64) -> String {
    format!("+{d}cyc")
}

/// One job per benchmark: G-Scalar at each extra latency, IPC
/// normalized to the +0 run.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let cfg = GpuConfig::gtx480();
        let mut sim = JobSim::new(ctx);
        let mut out = JobOutput::default();
        let mut base = 0.0;
        for d in DEPTHS {
            let mut arch = Arch::GScalar.config();
            arch.extra_latency = d;
            let s = sim.run_stats(&cfg, arch, w)?;
            out.sim_cycles += s.cycles;
            if d == 0 {
                base = s.ipc();
            }
            out.metric(col(d), s.ipc() / base);
        }
        Ok(out)
    })
}

/// Renders the latency-sensitivity table from job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Ablation: IPC vs extra pipeline latency (normalized to +0)");
    let head: Vec<String> = DEPTHS.iter().map(|&d| col(d)).collect();
    let head_refs: Vec<&str> = head.iter().map(String::as_str).collect();
    r.table(&head_refs);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); DEPTHS.len()];
    for w in suite(scale) {
        let vals: Vec<f64> = DEPTHS
            .iter()
            .map(|&d| rs.metric(NAME, &w.abbr, &col(d)))
            .collect();
        for (c, v) in cols.iter_mut().zip(&vals) {
            c.push(*v);
        }
        r.row(&w.abbr, &vals, |x| format!("{x:.3}"));
    }
    let avg: Vec<f64> = cols.iter().map(|c| mean(c)).collect();
    r.row("AVG", &avg, |x| format!("{x:.3}"));
    r.blank();
    r.note("paper: +3 cycles costs 1.7% IPC on average (Section 5.4).");
    r.add_cycles(rs.sim_cycles(NAME));
}
