//! Figure 12: normalized register-file dynamic power under the four
//! register-file designs, plus average compression ratios.

use gscalar_core::Arch;
use gscalar_power::{rf_energy_pj, RfScheme};
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::{mean, Report};

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "fig12_rf_power";

/// The figure's columns.
const COLS: [&str; 5] = ["scalar-only", "W-C", "ours", "ratio", "bdi-ratio"];

/// One job per benchmark: a G-Scalar run priced under every RF scheme
/// (normalized to the baseline scheme) plus a baseline run for the
/// compression ratios. This inlines `Runner::rf_power_normalized` so
/// both runs go through the budgeted entry point.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let runner = gscalar_core::Runner::new(GpuConfig::gtx480());
        let mut sim = JobSim::new(ctx);
        let gs = sim.run(&runner, w, Arch::GScalar)?;
        let base_e = rf_energy_pj(&gs.stats, RfScheme::Baseline, runner.energy());
        let norm = |s: RfScheme| {
            let e = rf_energy_pj(&gs.stats, s, runner.energy());
            if base_e > 0.0 {
                e / base_e
            } else {
                0.0
            }
        };
        let report = sim.run(&runner, w, Arch::Baseline)?;
        let mut out = JobOutput {
            sim_cycles: gs.stats.cycles + report.stats.cycles,
            ..JobOutput::default()
        };
        out.metric("scalar-only", norm(RfScheme::ScalarRf));
        out.metric("W-C", norm(RfScheme::WarpedCompression));
        out.metric("ours", norm(RfScheme::ByteWise));
        out.metric("ratio", report.stats.rf.ours_ratio());
        out.metric("bdi-ratio", report.stats.rf.bdi_ratio());
        Ok(out)
    })
}

/// Renders the RF power table from job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Figure 12: normalized RF dynamic power (baseline = 1.0)");
    r.table(&COLS);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); COLS.len()];
    for w in suite(scale) {
        let vals: Vec<f64> = COLS.iter().map(|c| rs.metric(NAME, &w.abbr, c)).collect();
        for (c, v) in cols.iter_mut().zip(&vals) {
            c.push(*v);
        }
        r.row(&w.abbr, &vals, |x| format!("{x:.3}"));
    }
    let avg: Vec<f64> = cols.iter().map(|c| mean(c)).collect();
    r.row("AVG", &avg, |x| format!("{x:.3}"));
    r.blank();
    r.note("paper: scalar RF 63% of baseline, ours 46% (i.e. -54%); ours beats");
    r.note("W-C slightly; compression ratio ours 2.17 vs BDI 2.13.");
    r.add_cycles(rs.sim_cycles(NAME));
}
