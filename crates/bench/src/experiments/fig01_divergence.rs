//! Figure 1: percentage of divergent instructions and divergent scalar
//! instructions in total instructions, per benchmark — plus the
//! per-branch attribution of that divergence from the PC-level
//! profiler.

use gscalar_core::{Arch, Runner};
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::{mean, row, Report};

use super::{suite_grid, JobSim};
use gscalar_sweep::JobSpec;

/// Registry name.
pub const NAME: &str = "fig01_divergence";

/// One job per benchmark: a profiled baseline run, reduced to the
/// figure's two fractions plus per-branch divergence attribution
/// (`branch<pc>/execs|diverged|div_share%`).
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let cfg = GpuConfig::gtx480();
        let runner = Runner::new(cfg);
        let mut sim = JobSim::new(ctx);
        let run = runner.run_profiled(w, Arch::Baseline);
        let stats = &run.report.stats;
        sim.charge(stats.cycles)?;
        let wi = stats.instr.warp_instrs as f64;
        let mut out = JobOutput {
            sim_cycles: stats.cycles,
            ..JobOutput::default()
        };
        out.metric(
            "divergent%",
            100.0 * stats.instr.divergent_instrs as f64 / wi,
        );
        out.metric(
            "div-scalar%",
            100.0 * stats.instr.eligible_divergent as f64 / wi,
        );
        // Attribute the benchmark's divergent instructions to branches:
        // every divergent issue happens on the path below some diverged
        // branch, so the diverged branches (sorted by diverged count)
        // tell *where* Figure 1's divergence comes from.
        let total_div = stats.instr.divergent_instrs.max(1) as f64;
        for pc in run.profile.executed_pcs() {
            let rec = run.profile.record(pc);
            if rec.branch.diverged == 0 {
                continue;
            }
            // Divergent issues on the instructions strictly between the
            // branch and its reconvergence point ran under this branch.
            let reconv = w
                .kernel
                .reconvergence_pc(pc)
                .unwrap_or_else(|| w.kernel.len());
            let under: u64 = (pc + 1..reconv)
                .map(|q| run.profile.record(q).divergent_issues)
                .sum();
            out.metric(format!("branch{pc}/execs"), rec.branch.execs as f64);
            out.metric(format!("branch{pc}/diverged"), rec.branch.diverged as f64);
            out.metric(
                format!("branch{pc}/div_share%"),
                100.0 * under as f64 / total_div,
            );
        }
        Ok(out)
    })
}

/// Renders the figure from job metrics; branch disassembly comes from
/// the (static) kernel definition, so nothing is re-simulated.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Figure 1: divergent / divergent-scalar instruction fractions");
    r.table(&["divergent%", "div-scalar%"]);
    let mut divs = Vec::new();
    let mut dscals = Vec::new();
    // Per-benchmark divergent-branch rows, rendered after the main
    // table: (abbr, pc, execs, diverged, div-instr share, disasm).
    let mut branch_rows: Vec<(String, usize, u64, u64, f64, String)> = Vec::new();
    for w in suite(scale) {
        let d = rs.metric(NAME, &w.abbr, "divergent%");
        let ds = rs.metric(NAME, &w.abbr, "div-scalar%");
        divs.push(d);
        dscals.push(ds);
        r.row(&w.abbr, &[d, ds], |x| format!("{x:.1}"));
        let jr = rs.get(NAME, &w.abbr).expect("job result present");
        let mut pcs: Vec<usize> = jr
            .metrics
            .keys()
            .filter_map(|k| {
                k.strip_prefix("branch")
                    .and_then(|rest| rest.strip_suffix("/execs"))
                    .and_then(|n| n.parse().ok())
            })
            .collect();
        pcs.sort_unstable();
        for pc in pcs {
            let execs = rs.metric(NAME, &w.abbr, &format!("branch{pc}/execs"));
            let diverged = rs.metric(NAME, &w.abbr, &format!("branch{pc}/diverged"));
            let share = rs.metric(NAME, &w.abbr, &format!("branch{pc}/div_share%"));
            r.metric(&format!("{}/branch{pc}/execs", w.abbr), execs);
            r.metric(&format!("{}/branch{pc}/diverged", w.abbr), diverged);
            r.metric(&format!("{}/branch{pc}/div_share%", w.abbr), share);
            branch_rows.push((
                w.abbr.clone(),
                pc,
                execs as u64,
                diverged as u64,
                share,
                w.kernel.instr(pc).to_string(),
            ));
        }
    }
    r.row("AVG", &[mean(&divs), mean(&dscals)], |x| format!("{x:.1}"));
    r.blank();

    r.title("Divergent branches (from the PC-level profiler):");
    r.title(&row(
        "bench",
        &["pc", "execs", "diverged", "div-share%", "instr"].map(String::from),
    ));
    branch_rows.sort_by(|a, b| {
        b.4.partial_cmp(&a.4)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    for (abbr, pc, execs, diverged, share, disasm) in &branch_rows {
        r.row_text(
            abbr,
            &[
                format!("{pc}"),
                format!("{execs}"),
                format!("{diverged}"),
                format!("{share:.1}"),
                format!("  {disasm}"),
            ],
        );
    }
    r.blank();
    r.note("paper: avg 28% divergent; 45% of divergent instructions are");
    r.note("divergent-scalar (i.e. ~12.6% of total).");
    r.note(&format!(
        "measured: {:.1}% divergent; {:.0}% of divergent are divergent-scalar.",
        mean(&divs),
        100.0 * mean(&dscals) / mean(&divs).max(1e-9)
    ));
    r.add_cycles(rs.sim_cycles(NAME));
}
