//! Figure 11: normalized GPU power efficiency (IPC/W) and the IPC
//! impact of the +3-cycle compression latency.

use gscalar_core::Arch;
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::{mean, Report};

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "fig11_power_efficiency";

/// The figure's columns.
const COLS: [&str; 4] = ["ALUscal", "GS-w/o-div", "G-Scalar", "GS(IPC)"];

/// One job per benchmark: all four architecture variants, reduced to
/// baseline-normalized IPC/W (and G-Scalar's normalized IPC).
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let runner = gscalar_core::Runner::new(GpuConfig::gtx480());
        let mut sim = JobSim::new(ctx);
        let base = sim.run(&runner, w, Arch::Baseline)?;
        let alu = sim.run(&runner, w, Arch::AluScalar)?;
        let nod = sim.run(&runner, w, Arch::GScalarNoDivergent)?;
        let gs = sim.run(&runner, w, Arch::GScalar)?;
        let base_eff = base.ipc_per_watt();
        let base_ipc = base.stats.ipc();
        let mut out = JobOutput {
            sim_cycles: base.stats.cycles + alu.stats.cycles + nod.stats.cycles + gs.stats.cycles,
            ..JobOutput::default()
        };
        out.metric("ALUscal", alu.ipc_per_watt() / base_eff);
        out.metric("GS-w/o-div", nod.ipc_per_watt() / base_eff);
        out.metric("G-Scalar", gs.ipc_per_watt() / base_eff);
        out.metric("GS(IPC)", gs.stats.ipc() / base_ipc);
        Ok(out)
    })
}

/// Renders the efficiency table and headline comparison from job
/// metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Figure 11: normalized IPC/W (baseline = 1.0) and G-Scalar IPC");
    r.table(&COLS);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); COLS.len()];
    for w in suite(scale) {
        let vals: Vec<f64> = COLS.iter().map(|c| rs.metric(NAME, &w.abbr, c)).collect();
        for (c, v) in cols.iter_mut().zip(&vals) {
            c.push(*v);
        }
        r.row(&w.abbr, &vals, |x| format!("{x:.3}"));
    }
    let avg: Vec<f64> = cols.iter().map(|c| mean(c)).collect();
    r.row("AVG", &avg, |x| format!("{x:.3}"));
    r.blank();
    r.note("paper: G-Scalar +24% IPC/W vs baseline and +15% vs ALU-scalar;");
    r.note("mean IPC degradation 1.7% (LC worst); BP gains 79%.");
    let gs_avg = avg[2];
    let alu_avg = avg[0];
    r.note(&format!(
        "measured: G-Scalar {:+.1}% vs baseline, {:+.1}% vs ALU-scalar; IPC {:+.1}%.",
        100.0 * (gs_avg - 1.0),
        100.0 * (gs_avg / alu_avg - 1.0),
        100.0 * (avg[3] - 1.0)
    ));
    r.add_cycles(rs.sim_cycles(NAME));
}
