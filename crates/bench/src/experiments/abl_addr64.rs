//! Extension study: 64-bit address computation (Section 5.3 prose).
//!
//! "If the addresses are 64-bit, we can have more bytes with the same
//! value and thus more power reduction." This study compares the
//! uniform-byte-prefix fraction of coalesced warp address streams when
//! computed at 32-bit vs 64-bit width.

use gscalar_compress::{bytewise, full_mask};
use gscalar_sweep::{JobId, JobOutput, JobSpec, ResultSet};
use gscalar_workloads::Scale;

use crate::Report;

/// Registry name.
pub const NAME: &str = "abl_addr64";

/// The studied address patterns: (name, metric slug, base, per-lane
/// stride).
const PATTERNS: [(&str, &str, u64, u64); 4] = [
    (
        "unit-stride floats",
        "unit-stride",
        0x0000_0002_4000_0000,
        4,
    ),
    ("row-major matrix", "row-major", 0x0000_0007_1000_0000, 256),
    (
        "strided struct-of-arrays",
        "strided-soa",
        0x0000_001F_8000_0000,
        64,
    ),
    ("page-crossing", "page-crossing", 0x0000_0000_FFFF_FF00, 32),
];

/// A single job ("patterns"): byte-savings of every address pattern at
/// both widths.
pub fn grid(_scale: Scale) -> Vec<JobSpec> {
    vec![JobSpec::new(JobId::new(NAME, "patterns"), |_ctx| {
        let mask = full_mask(32);
        let mut out = JobOutput::default();
        for (_, slug, base, stride) in PATTERNS {
            let addrs64: Vec<u64> = (0..32u64).map(|i| base + i * stride).collect();
            let addrs32: Vec<u32> = addrs64.iter().map(|&a| a as u32).collect();
            let p64 = bytewise::uniform_prefix_bytes_u64(&addrs64, mask);
            let enc32 = bytewise::encode(&addrs32, mask);
            let saved32 = enc32.base_bytes() as f64 / 4.0;
            let saved64 = p64 as f64 / 8.0;
            out.metric(format!("{slug}/saved32_pct"), 100.0 * saved32);
            out.metric(format!("{slug}/saved64_pct"), 100.0 * saved64);
            out.metric(format!("{slug}/gain_pct"), 100.0 * (saved64 - saved32));
        }
        Ok(out)
    })]
}

/// Renders the address-width comparison from job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, _scale: Scale) {
    let m = |key: String| rs.metric(NAME, "patterns", &key);
    r.title("Extension: 32-bit vs 64-bit address compression opportunity");
    r.note(&format!(
        "{:<28} {:>12} {:>12} {:>12}",
        "address pattern", "32b saved", "64b saved", "gain"
    ));
    for (name, slug, _, _) in PATTERNS {
        let s32 = m(format!("{slug}/saved32_pct"));
        let s64 = m(format!("{slug}/saved64_pct"));
        let gain = m(format!("{slug}/gain_pct"));
        r.note(&format!(
            "{name:<28} {s32:>11.0}% {s64:>11.0}% {gain:>11.0}%"
        ));
        r.metric(&format!("{slug}/saved32_pct"), s32);
        r.metric(&format!("{slug}/saved64_pct"), s64);
        r.metric(&format!("{slug}/gain_pct"), gain);
    }
    r.blank();
    r.note("64-bit addressing raises the uniform-prefix fraction on every");
    r.note("pattern (the top four bytes of device pointers rarely differ");
    r.note("within a warp), supporting the paper's claim.");
}
