//! Figure 10: instructions eligible for half-(quarter-)warp scalar
//! execution for warp sizes 32 and 64 (16-thread checking granularity).

use gscalar_core::{Arch, Runner};
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::{mean, Report};

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "fig10_warp_size";

/// One job per benchmark: two baseline runs (warp 32 and warp 64),
/// reduced to the half-scalar eligibility percentage at each size.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let cfg32 = GpuConfig::gtx480();
        let mut cfg64 = GpuConfig::gtx480();
        cfg64.warp_size = 64;
        let r32 = Runner::new(cfg32);
        let r64 = Runner::new(cfg64);
        let mut sim = JobSim::new(ctx);
        let s32 = sim.run(&r32, w, Arch::Baseline)?.stats;
        let s64 = sim.run(&r64, w, Arch::Baseline)?.stats;
        let mut out = JobOutput {
            sim_cycles: s32.cycles + s64.cycles,
            ..JobOutput::default()
        };
        out.metric(
            "warp32%",
            100.0 * s32.instr.eligible_half as f64 / s32.instr.warp_instrs as f64,
        );
        out.metric(
            "warp64%",
            100.0 * s64.instr.eligible_half as f64 / s64.instr.warp_instrs as f64,
        );
        Ok(out)
    })
}

/// Renders the warp-size comparison from job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg32 = GpuConfig::gtx480();
    r.config(&cfg32);
    r.title("Figure 10: half-scalar eligibility vs warp size");
    r.table(&["warp32%", "warp64%"]);
    let mut a32 = Vec::new();
    let mut a64 = Vec::new();
    for w in suite(scale) {
        let h32 = rs.metric(NAME, &w.abbr, "warp32%");
        let h64 = rs.metric(NAME, &w.abbr, "warp64%");
        a32.push(h32);
        a64.push(h64);
        r.row(&w.abbr, &[h32, h64], |x| format!("{x:.1}"));
    }
    r.row("AVG", &[mean(&a32), mean(&a64)], |x| format!("{x:.1}"));
    r.blank();
    r.note("paper: average half-scalar ~2% at warp 32, rising to ~5% at warp 64");
    r.note("(full-warp-scalar instructions of two merged 32-thread warps become");
    r.note("half-scalar at warp 64).");
    r.add_cycles(rs.sim_cycles(NAME));
}
