//! Figure 8: register-file access distribution for operand values.

use gscalar_core::Arch;
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::{mean, Report};

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "fig08_rf_distribution";

/// The figure's columns, in [`gscalar_compress`] histogram order.
const COLS: [&str; 6] = [
    "scalar%", "3-byte%", "2-byte%", "1-byte%", "other%", "diverg%",
];

/// One job per benchmark: a baseline run reduced to the six operand
/// similarity-class percentages.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let runner = gscalar_core::Runner::new(GpuConfig::gtx480());
        let mut sim = JobSim::new(ctx);
        let report = sim.run(&runner, w, Arch::Baseline)?;
        let f = report.stats.rf.histogram.fractions();
        let mut out = JobOutput {
            sim_cycles: report.stats.cycles,
            ..JobOutput::default()
        };
        for (col, x) in COLS.iter().zip(f) {
            out.metric(*col, 100.0 * x);
        }
        Ok(out)
    })
}

/// Renders the distribution table and suite average from job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Figure 8: RF access distribution (operand value similarity)");
    r.table(&COLS);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); COLS.len()];
    for w in suite(scale) {
        let vals: Vec<f64> = COLS.iter().map(|c| rs.metric(NAME, &w.abbr, c)).collect();
        for (c, v) in cols.iter_mut().zip(&vals) {
            c.push(*v);
        }
        r.row(&w.abbr, &vals, |x| format!("{x:.1}"));
    }
    let avg: Vec<f64> = cols.iter().map(|c| mean(c)).collect();
    r.row("AVG", &avg, |x| format!("{x:.1}"));
    r.blank();
    r.note("paper: avg scalar 36%, 3-byte 17%, 2-byte 4%, 1-byte 7%.");
    r.add_cycles(rs.sim_cycles(NAME));
}
