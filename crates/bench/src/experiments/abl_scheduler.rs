//! Ablation: warp scheduler policy (GTO vs loose round-robin).
//!
//! Section 4.1's burst-of-scalar-instructions observation assumes warps
//! run at roughly the same pace; LRR strengthens that effect, GTO
//! weakens it. This ablation measures both baseline performance and the
//! scalar-bank serialization pressure of the prior-work design.

use gscalar_core::Arch;
use gscalar_sim::scheduler::SchedPolicy;
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::Report;

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "abl_scheduler";

/// Integer-aware cell format shared by job values.
fn fmt(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e9 {
        format!("{x:.0}")
    } else {
        format!("{x:.1}")
    }
}

/// One job per benchmark: the ALU-scalar architecture under GTO and
/// LRR scheduling.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let mut sim = JobSim::new(ctx);
        let run = |policy: SchedPolicy, sim: &mut JobSim| {
            let mut cfg = GpuConfig::gtx480();
            cfg.sched = policy;
            sim.run_stats(&cfg, Arch::AluScalar.config(), w)
        };
        let gto = run(SchedPolicy::Gto, &mut sim)?;
        let lrr = run(SchedPolicy::Lrr, &mut sim)?;
        let mut out = JobOutput {
            sim_cycles: gto.cycles + lrr.cycles,
            ..JobOutput::default()
        };
        out.metric("gto-IPC", gto.ipc());
        out.metric("lrr-IPC", lrr.ipc());
        out.metric("gto-ser", gto.pipe.scalar_bank_serializations as f64);
        out.metric("lrr-ser", lrr.pipe.scalar_bank_serializations as f64);
        Ok(out)
    })
}

/// Renders the scheduler ablation from job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    r.config(&GpuConfig::gtx480());
    r.title("Ablation: GTO vs LRR (ALU-scalar architecture)");
    r.table(&["gto-IPC", "lrr-IPC", "gto-ser", "lrr-ser"]);
    for w in suite(scale) {
        let vals = [
            rs.metric(NAME, &w.abbr, "gto-IPC"),
            rs.metric(NAME, &w.abbr, "lrr-IPC"),
            rs.metric(NAME, &w.abbr, "gto-ser"),
            rs.metric(NAME, &w.abbr, "lrr-ser"),
        ];
        r.row(&w.abbr, &vals, fmt);
    }
    r.blank();
    r.note("the single scalar bank serializes under both policies; warps running");
    r.note("in lockstep (LRR) tend to burst scalar reads harder (Section 4.1).");
    r.add_cycles(rs.sim_cycles(NAME));
}
