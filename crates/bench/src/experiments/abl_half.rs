//! Ablation: half-warp scalar execution and half-register compression.
//!
//! Section 4.3 prices the second set of BVR/EBR registers at a register
//! file area increase from 3% to 7%. This ablation shows what the
//! feature buys: the efficiency delta of G-Scalar with and without
//! half-warp scalar execution.

use gscalar_core::Arch;
use gscalar_power::synthesis::rf_area_overhead_fraction;
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::{mean, Report};

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "abl_half";

/// One job per benchmark: baseline, full G-Scalar, and G-Scalar with
/// half-warp scalar execution disabled (priced under the same
/// byte-wise RF scheme).
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let cfg = GpuConfig::gtx480();
        let runner = gscalar_core::Runner::new(cfg.clone());
        let mut sim = JobSim::new(ctx);
        let base = sim.run(&runner, w, Arch::Baseline)?;
        let with = sim.run(&runner, w, Arch::GScalar)?;
        let mut arch = Arch::GScalar.config();
        arch.scalar_half = false;
        arch.name = "G-Scalar w/o half".into();
        let stats = sim.run_stats(&cfg, arch, w)?;
        let power = gscalar_power::chip_power(
            &stats,
            &cfg,
            gscalar_power::RfScheme::ByteWise,
            true,
            runner.energy(),
        );
        let b = base.power.ipc_per_watt();
        let no_half = power.ipc_per_watt() / b;
        let half = with.power.ipc_per_watt() / b;
        let mut out = JobOutput {
            sim_cycles: base.stats.cycles + with.stats.cycles + stats.cycles,
            ..JobOutput::default()
        };
        out.metric("no-half", no_half);
        out.metric("with-half", half);
        out.metric("delta%", 100.0 * (half / no_half - 1.0));
        Ok(out)
    })
}

/// Renders the ablation table from job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Ablation: half-warp scalar execution on/off (IPC/W, baseline = 1.0)");
    r.table(&["no-half", "with-half", "delta%"]);
    let mut deltas = Vec::new();
    for w in suite(scale) {
        let no_half = rs.metric(NAME, &w.abbr, "no-half");
        let half = rs.metric(NAME, &w.abbr, "with-half");
        let d = rs.metric(NAME, &w.abbr, "delta%");
        deltas.push(d);
        r.row(&w.abbr, &[no_half, half, d], |x| format!("{x:.3}"));
    }
    let avg = mean(&deltas);
    r.row_text("AVG", &["".into(), "".into(), format!("{avg:+.2}")]);
    r.metric("AVG/delta%", avg);
    r.blank();
    r.note(&format!(
        "cost: RF area overhead {:.0}% → {:.0}% (Section 4.3); the paper keeps",
        100.0 * rf_area_overhead_fraction(false),
        100.0 * rf_area_overhead_fraction(true)
    ));
    r.note("half-warp scalar optional and non-divergent-only.");
    r.add_cycles(rs.sim_cycles(NAME));
}
