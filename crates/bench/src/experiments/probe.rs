//! Quick calibration probe: per-benchmark characteristics vs paper
//! targets, with full per-run detail via [`crate::run_metrics`].

use gscalar_core::Arch;
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::{run_metrics, Report};

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "probe";

/// One job per benchmark: a baseline run recorded as the full
/// [`crate::run_metrics`] set (keys already prefixed with the abbr, as
/// `Report::record_run` would write them).
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let runner = gscalar_core::Runner::new(GpuConfig::gtx480());
        let mut sim = JobSim::new(ctx);
        let report = sim.run(&runner, w, Arch::Baseline)?;
        Ok(JobOutput {
            sim_cycles: report.stats.cycles,
            metrics: run_metrics(&w.abbr, &report),
        })
    })
}

/// Renders the probe table from job metrics; the job manifests carry
/// the exact `record_run` metric set, so they are copied through
/// verbatim. The t(s) column reports each job's host wall time (0.00
/// for results resumed from disk or under deterministic output).
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.note(&format!(
        "{:<6} {:>9} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>6}",
        "bench",
        "winstr",
        "div%",
        "dscal%",
        "alu%",
        "sfu%",
        "mem%",
        "half%",
        "tot%",
        "cycles",
        "t(s)"
    ));
    for w in suite(scale) {
        let jr = rs.get(NAME, &w.abbr).expect("job result present");
        let g = |k: &str| rs.metric(NAME, &w.abbr, &format!("{}/{}", w.abbr, k));
        let wi = g("instr/warp");
        let eligible_total = g("scalar/eligible_alu")
            + g("scalar/eligible_sfu")
            + g("scalar/eligible_mem")
            + g("scalar/eligible_half")
            + g("scalar/eligible_divergent");
        r.note(&format!(
            "{:<6} {:>9} {:>6.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>8} {:>6.2}",
            w.abbr,
            wi,
            100.0 * g("instr/divergent") / wi,
            100.0 * g("scalar/eligible_divergent") / wi,
            100.0 * g("scalar/eligible_alu") / wi,
            100.0 * g("scalar/eligible_sfu") / wi,
            100.0 * g("scalar/eligible_mem") / wi,
            100.0 * g("scalar/eligible_half") / wi,
            100.0 * eligible_total / wi,
            g("cycles"),
            if r.deterministic() { 0.0 } else { jr.wall_s }
        ));
        for (k, v) in &jr.metrics {
            r.metric(k, *v);
        }
    }
    r.add_cycles(rs.sim_cycles(NAME));
}
