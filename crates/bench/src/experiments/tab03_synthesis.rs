//! Table 3: compressor/decompressor synthesis results and the chip-level
//! overhead arithmetic of Section 5.1.

use gscalar_power::synthesis::{
    rf_area_overhead_fraction, sm_overhead, COMPRESSOR, COMPRESSORS_PER_SM, DECOMPRESSOR,
    DECOMPRESSORS_PER_SM,
};
use gscalar_sweep::{JobId, JobOutput, JobSpec, ResultSet};
use gscalar_workloads::Scale;

use crate::Report;

/// Registry name.
pub const NAME: &str = "tab03_synthesis";

/// A single job ("synthesis"): the synthesis constants and overhead
/// arithmetic as metrics.
pub fn grid(_scale: Scale) -> Vec<JobSpec> {
    vec![JobSpec::new(JobId::new(NAME, "synthesis"), |_ctx| {
        let mut out = JobOutput::default();
        for (name, s) in [("decompressor", &DECOMPRESSOR), ("compressor", &COMPRESSOR)] {
            out.metric(format!("{name}/area_um2"), s.area_um2);
            out.metric(format!("{name}/delay_ns"), s.delay_ns);
            out.metric(format!("{name}/power_mw"), s.power_mw);
        }
        let o = sm_overhead();
        out.metric("sm_overhead/power_w", o.power_w);
        out.metric("sm_overhead/area_mm2", o.area_mm2);
        out.metric(
            "rf_area_overhead/full_pct",
            100.0 * rf_area_overhead_fraction(false),
        );
        out.metric(
            "rf_area_overhead/half_pct",
            100.0 * rf_area_overhead_fraction(true),
        );
        Ok(out)
    })]
}

/// Renders the synthesis table from the static constants + job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, _scale: Scale) {
    let m = |key: &str| rs.metric(NAME, "synthesis", key);
    r.title("Table 3: encoder/decoder synthesis at 1.4 GHz (40 nm, incl. pipeline regs)");
    r.note(&format!(
        "{:<14} {:>12} {:>10} {:>10}",
        "", "area (um^2)", "delay(ns)", "power(mW)"
    ));
    for name in ["decompressor", "compressor"] {
        r.note(&format!(
            "{:<14} {:>12.0} {:>10.2} {:>10.2}",
            name,
            m(&format!("{name}/area_um2")),
            m(&format!("{name}/delay_ns")),
            m(&format!("{name}/power_mw"))
        ));
        for key in ["area_um2", "delay_ns", "power_mw"] {
            r.metric(&format!("{name}/{key}"), m(&format!("{name}/{key}")));
        }
    }
    r.blank();
    r.note(&format!(
        "per SM: {} decompressors + {} compressors = {:.2} W, {:.3} mm^2",
        DECOMPRESSORS_PER_SM,
        COMPRESSORS_PER_SM,
        m("sm_overhead/power_w"),
        m("sm_overhead/area_mm2")
    ));
    r.metric("sm_overhead/power_w", m("sm_overhead/power_w"));
    r.metric("sm_overhead/area_mm2", m("sm_overhead/area_mm2"));
    let full = m("rf_area_overhead/full_pct");
    let half = m("rf_area_overhead/half_pct");
    r.note(&format!(
        "RF area overhead: {full:.0}% (full-register), {half:.0}% (half-register)"
    ));
    r.metric("rf_area_overhead/full_pct", full);
    r.metric("rf_area_overhead/half_pct", half);
    r.note("paper: 0.32 W (1.6%) and 0.16 mm^2 (0.7%) per SM; RF +3%/+7%.");
}
