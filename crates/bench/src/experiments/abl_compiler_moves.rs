//! Extension study: compiler-assisted decompress-move elision
//! (Section 3.3).
//!
//! The hardware-only scheme inserts a register-to-register move before
//! every divergent partial write to a compressed register (~2% dynamic
//! instructions per prior work). The paper notes a compiler can prove
//! many destinations dead and skip the move; this study measures how
//! many moves our liveness analysis elides.

use gscalar_core::Arch;
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::Report;

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "abl_compiler_moves";

/// Integer-aware cell format shared by job values.
fn fmt(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e9 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

/// One job per benchmark: G-Scalar with hardware-only vs
/// compiler-assisted decompress moves.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let cfg = GpuConfig::gtx480();
        let mut sim = JobSim::new(ctx);
        let run = |compiler: bool, sim: &mut JobSim| {
            let mut arch = Arch::GScalar.config();
            arch.compiler_assisted_moves = compiler;
            sim.run_stats(&cfg, arch, w)
        };
        let hw = run(false, &mut sim)?;
        let cc = run(true, &mut sim)?;
        let mut out = JobOutput {
            sim_cycles: hw.cycles + cc.cycles,
            ..JobOutput::default()
        };
        out.metric("hw-moves", hw.instr.decompress_moves as f64);
        out.metric("cc-moves", cc.instr.decompress_moves as f64);
        out.metric("elided", cc.instr.decompress_moves_elided as f64);
        out.metric(
            "hw-ovh%",
            100.0 * hw.instr.decompress_moves as f64 / hw.instr.warp_instrs as f64,
        );
        out.metric(
            "cc-ovh%",
            100.0 * cc.instr.decompress_moves as f64 / cc.instr.warp_instrs as f64,
        );
        Ok(out)
    })
}

/// Renders the elision study; suite totals are summed from the
/// per-benchmark job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Extension: decompress-move elision via liveness analysis");
    r.table(&["hw-moves", "cc-moves", "elided", "hw-ovh%", "cc-ovh%"]);
    let mut total_hw = 0u64;
    let mut total_cc = 0u64;
    for w in suite(scale) {
        let vals = [
            rs.metric(NAME, &w.abbr, "hw-moves"),
            rs.metric(NAME, &w.abbr, "cc-moves"),
            rs.metric(NAME, &w.abbr, "elided"),
            rs.metric(NAME, &w.abbr, "hw-ovh%"),
            rs.metric(NAME, &w.abbr, "cc-ovh%"),
        ];
        total_hw += vals[0] as u64;
        total_cc += vals[1] as u64;
        r.row(&w.abbr, &vals, fmt);
    }
    let removed = 100.0 * (1.0 - total_cc as f64 / total_hw.max(1) as f64);
    r.blank();
    r.note(&format!(
        "suite total: {total_hw} moves hardware-only → {total_cc} with liveness elision ({removed:.0}% removed)"
    ));
    r.metric("total/hw_moves", total_hw as f64);
    r.metric("total/cc_moves", total_cc as f64);
    r.metric("total/removed_pct", removed);
    r.note("paper: hardware-only costs ~2% dynamic instructions; compile-time");
    r.note("lifetime analysis \"may further reduce the overhead\" (Section 3.3).");
    r.add_cycles(rs.sim_cycles(NAME));
}
