//! Table 1: simulator configuration.

use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobId, JobOutput, JobSpec, ResultSet};
use gscalar_workloads::Scale;

use crate::Report;

/// Registry name.
pub const NAME: &str = "tab01_config";

/// Table rows: (display label, metric key, display text, value).
fn rows(c: &GpuConfig) -> Vec<(&'static str, &'static str, String, f64)> {
    vec![
        (
            "# of SMs",
            "num_sms",
            format!("{}", c.num_sms),
            c.num_sms as f64,
        ),
        (
            "Registers per SM",
            "regs_kb",
            format!("{} KB", c.regs_per_sm * 4 / 1024),
            (c.regs_per_sm * 4 / 1024) as f64,
        ),
        (
            "SM frequency",
            "sm_ghz",
            format!("{:.1} GHz", c.sm_clock_hz / 1e9),
            c.sm_clock_hz / 1e9,
        ),
        (
            "Register file banks",
            "rf_banks",
            format!("{}", c.rf_banks),
            c.rf_banks as f64,
        ),
        (
            "NoC frequency",
            "noc_ghz",
            format!("{:.1} GHz", c.noc_clock_hz / 1e9),
            c.noc_clock_hz / 1e9,
        ),
        (
            "OC per SM",
            "operand_collectors",
            format!("{}", c.operand_collectors),
            c.operand_collectors as f64,
        ),
        (
            "Warp size",
            "warp_size",
            format!("{}", c.warp_size),
            c.warp_size as f64,
        ),
        (
            "Schedulers per SM",
            "schedulers",
            format!("{}", c.schedulers),
            c.schedulers as f64,
        ),
        (
            "SIMT exe width",
            "simt_width",
            format!("{}", c.simt_width),
            c.simt_width as f64,
        ),
        (
            "L1$ per SM",
            "l1_kb",
            format!("{} KB", c.l1_bytes / 1024),
            (c.l1_bytes / 1024) as f64,
        ),
        (
            "Threads per SM",
            "threads_per_sm",
            format!("{}", c.threads_per_sm),
            c.threads_per_sm as f64,
        ),
        (
            "Memory channels",
            "mem_channels",
            format!("{}", c.mem_channels),
            c.mem_channels as f64,
        ),
        (
            "CTAs per SM",
            "ctas_per_sm",
            format!("{}", c.ctas_per_sm),
            c.ctas_per_sm as f64,
        ),
        (
            "L2$ size",
            "l2_kb",
            format!("{} KB", c.l2_bytes / 1024),
            (c.l2_bytes / 1024) as f64,
        ),
    ]
}

/// A single job ("config"): the configuration values as metrics. No
/// simulation runs; the grid exists so Table 1 participates in sweeps,
/// resume, and regression comparison like every other experiment.
pub fn grid(_scale: Scale) -> Vec<JobSpec> {
    vec![JobSpec::new(JobId::new(NAME, "config"), |_ctx| {
        let c = GpuConfig::gtx480();
        let mut out = JobOutput::default();
        for (_, key, _, value) in rows(&c) {
            out.metric(format!("config/{key}"), value);
        }
        Ok(out)
    })]
}

/// Renders the configuration table; display text comes from the static
/// config, values from the job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, _scale: Scale) {
    let c = GpuConfig::gtx480();
    r.config(&c);
    r.title("Table 1: simulator configuration (GTX 480-like)");
    for (label, key, text, _) in rows(&c) {
        r.note(&format!("  {label:<20} {text}"));
        r.metric(
            &format!("config/{key}"),
            rs.metric(NAME, "config", &format!("config/{key}")),
        );
    }
}
