//! The experiment registry: every figure/table binary as a (grid,
//! render) pair over the sweep engine.
//!
//! Each experiment splits into two pure halves:
//!
//! * **grid** — the work: one [`JobSpec`] per independent unit
//!   (usually one benchmark of the suite), each returning raw metric
//!   cells keyed by the final table's column names.
//! * **render** — the presentation: rebuilds the familiar text table
//!   and manifest *only* from job metrics plus static data (the suite
//!   definition, hardware config, paper constants). Because render
//!   never re-simulates, an experiment resumed from on-disk job
//!   manifests renders byte-identically to a fresh run.
//!
//! The standalone binaries ([`main_single`]) and the `sweep` binary
//! both drive experiments through this registry, so there is exactly
//! one code path producing every figure and table.

use std::path::PathBuf;
use std::process::ExitCode;

use gscalar_core::{Arch, BudgetExceeded, RunReport, Runner, Workload};
use gscalar_sim::GpuConfig;
use gscalar_sweep::{
    run_sweep, JobCtx, JobError, JobOutput, JobSpec, Progress, ResultSet, SweepConfig,
};
use gscalar_workloads::Scale;

use crate::Report;

pub mod abl_addr64;
pub mod abl_compiler_moves;
pub mod abl_fast_dispatch;
pub mod abl_future_gpu;
pub mod abl_half;
pub mod abl_latency;
pub mod abl_scheduler;
pub mod bottleneck;
pub mod fig01_divergence;
pub mod fig08_rf_distribution;
pub mod fig09_scalar_eligibility;
pub mod fig10_warp_size;
pub mod fig11_power_efficiency;
pub mod fig12_rf_power;
pub mod probe;
pub mod tab01_config;
pub mod tab02_benchmarks;
pub mod tab03_synthesis;

/// One registered experiment: a job grid plus a pure render.
pub struct Experiment {
    /// Registry name (= binary name = manifest `bench` field).
    pub name: &'static str,
    /// One-line description for `sweep --list`.
    pub about: &'static str,
    /// Builds the experiment's job grid at `scale`.
    pub grid: fn(Scale) -> Vec<JobSpec>,
    /// Renders tables + manifest from completed job results.
    pub render: fn(&mut Report, &ResultSet, Scale),
}

/// Every experiment, in the order the paper presents them.
#[must_use]
pub fn all() -> Vec<Experiment> {
    macro_rules! exp {
        ($m:ident, $about:expr) => {
            Experiment {
                name: $m::NAME,
                about: $about,
                grid: $m::grid,
                render: $m::render,
            }
        };
    }
    vec![
        exp!(tab01_config, "Table 1: simulator configuration"),
        exp!(tab02_benchmarks, "Table 2: the benchmark suite"),
        exp!(
            fig01_divergence,
            "Figure 1: divergent instruction fractions"
        ),
        exp!(fig08_rf_distribution, "Figure 8: RF access distribution"),
        exp!(
            fig09_scalar_eligibility,
            "Figure 9: scalar-eligible instructions (cumulative)"
        ),
        exp!(
            fig10_warp_size,
            "Figure 10: half-scalar eligibility vs warp size"
        ),
        exp!(
            fig11_power_efficiency,
            "Figure 11: normalized IPC/W and G-Scalar IPC"
        ),
        exp!(fig12_rf_power, "Figure 12: normalized RF dynamic power"),
        exp!(tab03_synthesis, "Table 3: synthesis results and overheads"),
        exp!(abl_latency, "Ablation: IPC vs extra pipeline latency"),
        exp!(abl_half, "Ablation: half-warp scalar execution on/off"),
        exp!(abl_scheduler, "Ablation: GTO vs LRR scheduling"),
        exp!(abl_addr64, "Extension: 32- vs 64-bit address compression"),
        exp!(abl_compiler_moves, "Extension: decompress-move elision"),
        exp!(abl_fast_dispatch, "Extension: one-cycle scalar dispatch"),
        exp!(abl_future_gpu, "Extension: scalar-bank scalability"),
        exp!(probe, "Calibration probe: per-benchmark characteristics"),
        exp!(
            bottleneck,
            "Cycle accounting: CPI stacks, critical path, validated what-ifs"
        ),
    ]
}

/// Looks an experiment up by registry name.
#[must_use]
pub fn by_name(name: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.name == name)
}

/// Cumulative cycle-budget accounting for one job's simulations.
///
/// A job often runs several simulations (architecture variants, config
/// sweeps); the budget in [`JobCtx`] covers their *sum*. `JobSim`
/// threads the remaining allowance into each budgeted run and converts
/// a [`BudgetExceeded`] into the job-level [`JobError::Budget`] with
/// cumulative cycle counts. When the allowance is already exhausted the
/// next run gets a budget of 1 cycle, so it trips deterministically on
/// its first observer sample.
pub struct JobSim {
    budget: u64,
    used: u64,
}

impl JobSim {
    /// Starts accounting against the job's budget (0 = unlimited).
    #[must_use]
    pub fn new(ctx: &JobCtx) -> Self {
        JobSim {
            budget: ctx.cycle_budget,
            used: 0,
        }
    }

    /// Cycles simulated so far across this job's runs.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The budget to hand the next simulation (0 = unlimited).
    fn remaining(&self) -> u64 {
        if self.budget == 0 {
            0
        } else {
            self.budget.saturating_sub(self.used).max(1)
        }
    }

    fn overrun(&self, in_run: u64) -> JobError {
        JobError::Budget {
            cycles: self.used + in_run,
            budget: self.budget,
        }
    }

    /// Runs `workload` on `arch` under the remaining budget.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Budget`] when the cumulative budget trips.
    pub fn run(
        &mut self,
        runner: &Runner,
        workload: &Workload,
        arch: Arch,
    ) -> Result<RunReport, JobError> {
        match runner.run_budgeted(workload, arch, self.remaining()) {
            Ok(r) => {
                self.used += r.stats.cycles;
                Ok(r)
            }
            Err(e) => Err(self.overrun(e.cycles)),
        }
    }

    /// Runs `workload` under a custom [`gscalar_sim::ArchConfig`] with
    /// the remaining budget.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Budget`] when the cumulative budget trips.
    pub fn run_stats(
        &mut self,
        cfg: &GpuConfig,
        arch_cfg: gscalar_sim::ArchConfig,
        workload: &Workload,
    ) -> Result<gscalar_sim::Stats, JobError> {
        match gscalar_core::run_stats_budgeted(cfg, arch_cfg, workload, self.remaining()) {
            Ok(s) => {
                self.used += s.cycles;
                Ok(s)
            }
            Err(BudgetExceeded { cycles, .. }) => Err(self.overrun(cycles)),
        }
    }

    /// Post-hoc accounting for runs without a budgeted entry point
    /// (e.g. profiled runs): charge the cycles and fail if the
    /// cumulative budget is now exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Budget`] when the charge overruns the budget.
    pub fn charge(&mut self, cycles: u64) -> Result<(), JobError> {
        self.used += cycles;
        if self.budget != 0 && self.used > self.budget {
            Err(JobError::Budget {
                cycles: self.used,
                budget: self.budget,
            })
        } else {
            Ok(())
        }
    }
}

/// Command-line options shared by every experiment binary.
///
/// This is the *single* parser for the flag set the binaries share —
/// `--scale`, `--threads`, `--budget`, `--sim-threads`, `--hostprof`,
/// `--json`, `--deterministic`, `--live`, `--live-interval` — so no
/// binary re-implements flag handling. [`Report::from_args`] delegates
/// here too.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Workload scale (`--scale test|full`, default full).
    pub scale: Scale,
    /// Worker threads (`--threads N`, default 1; 0 = all cores).
    pub threads: usize,
    /// Per-job simulated-cycle budget (`--budget N`, default unlimited).
    pub budget: u64,
    /// Simulator executor threads per simulation (`--sim-threads N`,
    /// default 1 = serial; 0 = all cores). Results are byte-identical
    /// at any setting; see `gscalar_sim::parallel`.
    pub sim_threads: usize,
    /// Host-side self-profiling (`--hostprof`, default off). Purely
    /// observational: simulated results are byte-identical either way.
    pub hostprof: bool,
    /// Manifest output (`--json [path]`): `None` = no manifest,
    /// `Some(None)` = default path (`results/<bench>.json`),
    /// `Some(Some(p))` = explicit path.
    pub json: Option<Option<PathBuf>>,
    /// Deterministic output (`--deterministic`): zero wall-clock fields
    /// in manifests and in the live telemetry stream.
    pub deterministic: bool,
    /// Live telemetry target (`--live <path|addr>`): an NDJSON file
    /// path, or a socket address to serve SSE on. Purely observational;
    /// simulated results are byte-identical either way.
    pub live: Option<String>,
    /// Minimum cycles between live snapshots (`--live-interval N`,
    /// default [`gscalar_live::DEFAULT_SNAPSHOT_INTERVAL`]).
    pub live_interval: u64,
}

impl CliOptions {
    /// Parses the options from `args`, ignoring anything unknown.
    pub fn parse<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut o = CliOptions {
            scale: Scale::Full,
            threads: 1,
            budget: 0,
            sim_threads: 1,
            hostprof: false,
            json: None,
            deterministic: false,
            live: None,
            live_interval: gscalar_live::DEFAULT_SNAPSHOT_INTERVAL,
        };
        let mut it = args.into_iter().map(Into::into).peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    if let Some("test") = it.next().as_deref() {
                        o.scale = Scale::Test;
                    }
                }
                "--threads" => {
                    if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                        o.threads = n;
                    }
                }
                "--budget" => {
                    if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                        o.budget = n;
                    }
                }
                "--sim-threads" => {
                    if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                        o.sim_threads = n;
                    }
                }
                "--hostprof" => o.hostprof = true,
                "--json" => {
                    // The path operand is optional: `--json --scale ...`
                    // means "default path".
                    o.json = Some(match it.peek() {
                        Some(p) if !p.starts_with("--") => Some(PathBuf::from(it.next().unwrap())),
                        _ => None,
                    });
                }
                "--deterministic" => o.deterministic = true,
                "--live" => o.live = it.next(),
                "--live-interval" => {
                    if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                        o.live_interval = n;
                    }
                }
                _ => {}
            }
        }
        o
    }

    /// Resolves the manifest path for `bench` (`None` when `--json` was
    /// not given; the default is `results/<bench>.json`).
    #[must_use]
    pub fn json_path(&self, bench: &str) -> Option<PathBuf> {
        self.json.as_ref().map(|p| match p {
            Some(path) => path.clone(),
            None => PathBuf::from(format!("results/{bench}.json")),
        })
    }

    /// Opens the `--live` telemetry target, if any: a file path gets an
    /// NDJSON stream, a socket address an SSE server. The stream
    /// inherits `--deterministic` (wall-clock redaction) and
    /// `--live-interval`.
    ///
    /// # Errors
    ///
    /// Returns a message when the file or socket cannot be opened.
    pub fn open_live(&self) -> Result<Option<gscalar_live::LiveHandle>, String> {
        let Some(target) = &self.live else {
            return Ok(None);
        };
        gscalar_live::open_target(
            target,
            gscalar_live::StreamConfig {
                deterministic: self.deterministic,
                snapshot_interval: self.live_interval,
                ..gscalar_live::StreamConfig::default()
            },
        )
        .map(Some)
    }
}

/// The whole main of a standalone experiment binary: parse options,
/// run the grid through the sweep engine (in-memory, no results dir),
/// and render. Failures print one line per job to stderr and exit
/// nonzero.
#[must_use]
pub fn main_single(name: &str) -> ExitCode {
    let exp = by_name(name).unwrap_or_else(|| panic!("experiment {name} not registered"));
    let opts = CliOptions::parse(std::env::args().skip(1));
    // Experiments build their GpuConfigs internally; the process-wide
    // default lets one flag reach all of them. Sound because the
    // parallel engine is byte-identical to serial at any thread count.
    gscalar_sim::config::set_default_exec_threads(opts.sim_threads);
    gscalar_hostprof::set_enabled(opts.hostprof);
    let live = match opts.open_live() {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{name}: --live: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(h) = &live {
        gscalar_live::install(h.clone());
    }
    let code = run_single(&exp, &opts, live.clone());
    if let Some(h) = live {
        gscalar_live::uninstall();
        h.close();
    }
    code
}

/// The body of [`main_single`] between live-stream open and close.
fn run_single(
    exp: &Experiment,
    opts: &CliOptions,
    live: Option<gscalar_live::LiveHandle>,
) -> ExitCode {
    let mut specs = (exp.grid)(opts.scale);
    if opts.budget > 0 {
        for s in &mut specs {
            s.cycle_budget = opts.budget;
        }
    }
    let cfg = SweepConfig {
        threads: opts.threads,
        out_dir: None,
        max_retries: 0,
        progress: Progress::Quiet,
        live,
    };
    let outcome = run_sweep(&specs, &cfg);
    if !outcome.all_completed() {
        for f in &outcome.failures {
            eprintln!(
                "{}: job {} failed ({}): {}",
                exp.name, f.job, f.kind, f.message
            );
        }
        return ExitCode::FAILURE;
    }
    let mut r = Report::from_options(exp.name, opts);
    (exp.render)(&mut r, &outcome.results, opts.scale);
    r.finish();
    ExitCode::SUCCESS
}

/// Builds one [`JobSpec`] per suite workload via `job`, which receives
/// the workload by value and the job context.
pub(crate) fn suite_grid<F>(name: &'static str, scale: Scale, job: F) -> Vec<JobSpec>
where
    F: Fn(&Workload, &JobCtx) -> Result<JobOutput, JobError> + Send + Sync + Clone + 'static,
{
    gscalar_workloads::suite(scale)
        .into_iter()
        .map(|w| {
            let job = job.clone();
            let id = gscalar_sweep::JobId::new(name, &w.abbr);
            JobSpec::new(id, move |ctx| job(&w, ctx))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let exps = all();
        assert_eq!(exps.len(), 18);
        for e in &exps {
            assert!(by_name(e.name).is_some(), "{} resolves", e.name);
        }
        let mut names: Vec<_> = exps.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), exps.len(), "names are unique");
    }

    #[test]
    fn cli_options_parse_known_flags() {
        let o = CliOptions::parse([
            "--scale",
            "test",
            "--threads",
            "4",
            "--budget",
            "5000",
            "--sim-threads",
            "2",
            "--hostprof",
            "--deterministic",
            "--live",
            "/tmp/x.ndjson",
            "--live-interval",
            "256",
        ]);
        assert!(matches!(o.scale, Scale::Test));
        assert_eq!(o.threads, 4);
        assert_eq!(o.budget, 5000);
        assert_eq!(o.sim_threads, 2);
        assert!(o.hostprof);
        assert!(o.deterministic);
        assert_eq!(o.live.as_deref(), Some("/tmp/x.ndjson"));
        assert_eq!(o.live_interval, 256);
        let d = CliOptions::parse(Vec::<String>::new());
        assert!(matches!(d.scale, Scale::Full));
        assert_eq!(d.threads, 1);
        assert_eq!(d.budget, 0);
        assert_eq!(d.sim_threads, 1);
        assert!(!d.hostprof);
        assert!(!d.deterministic);
        assert!(d.live.is_none());
        assert_eq!(d.live_interval, gscalar_live::DEFAULT_SNAPSHOT_INTERVAL);
        assert!(d.json_path("x").is_none());
    }

    #[test]
    fn cli_options_json_path_resolution() {
        // `--json` followed by another flag means "default path".
        let o = CliOptions::parse(["--json", "--scale", "test"]);
        assert_eq!(
            o.json_path("fig99"),
            Some(PathBuf::from("results/fig99.json"))
        );
        let o = CliOptions::parse(["--json", "out/custom.json"]);
        assert_eq!(o.json_path("fig99"), Some(PathBuf::from("out/custom.json")));
    }

    #[test]
    fn jobsim_budget_trips_cumulatively() {
        let ctx = JobCtx { cycle_budget: 100 };
        let mut sim = JobSim::new(&ctx);
        assert!(sim.charge(60).is_ok());
        let err = sim.charge(60).unwrap_err();
        assert!(matches!(
            err,
            JobError::Budget {
                cycles: 120,
                budget: 100
            }
        ));
        // Unlimited budget never trips.
        let mut free = JobSim::new(&JobCtx { cycle_budget: 0 });
        assert!(free.charge(u64::MAX / 2).is_ok());
    }
}
