//! Extension study: scalar-bank scalability on a scaled-up "future GPU"
//! (Section 4.1).
//!
//! The paper argues that a single dedicated scalar bank does not scale:
//! "future GPUs also tend to have more hardware resources, such as
//! larger register file with more banks and more SIMT execution
//! pipelines. Thus, relying on only a single bank for scalar values may
//! not be a scalable approach." This study doubles the SM's front-end
//! and execution resources and compares the prior-work design's
//! scalar-bank serialization against G-Scalar's per-bank BVR arrays.

use gscalar_core::Arch;
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::Report;

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "abl_future_gpu";

/// The study's columns.
const COLS: [&str; 4] = ["gtx480", "future", "gs-480", "gs-fut"];

fn future_gpu() -> GpuConfig {
    let mut c = GpuConfig::gtx480();
    c.schedulers = 4;
    c.alu_pipes = 4;
    c.operand_collectors = 32;
    c.rf_banks = 32;
    c.regs_per_sm = 64 * 1024;
    c.threads_per_sm = 2048;
    c
}

/// One job per benchmark: scalar-bank serializations per 1k
/// instructions for both architectures on both machine sizes.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let now = GpuConfig::gtx480();
        let fut = future_gpu();
        let mut sim = JobSim::new(ctx);
        let mut out = JobOutput::default();
        let run = |cfg: &GpuConfig, arch: Arch, sim: &mut JobSim| {
            let s = sim.run_stats(cfg, arch.config(), w)?;
            Ok::<(u64, f64), gscalar_sweep::JobError>((
                s.cycles,
                1000.0 * s.pipe.scalar_bank_serializations as f64 / s.instr.warp_instrs as f64,
            ))
        };
        let cells = [
            run(&now, Arch::AluScalar, &mut sim)?,
            run(&fut, Arch::AluScalar, &mut sim)?,
            run(&now, Arch::GScalar, &mut sim)?,
            run(&fut, Arch::GScalar, &mut sim)?,
        ];
        for (col, (cycles, v)) in COLS.iter().zip(cells) {
            out.sim_cycles += cycles;
            out.metric(*col, v);
        }
        Ok(out)
    })
}

/// Renders the scalability study from job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let now = GpuConfig::gtx480();
    r.config(&now);
    r.title("Extension: scalar-bank serializations per 1k instructions");
    r.table(&COLS);
    let mut tot = [0.0f64; 4];
    let mut n = 0usize;
    for w in suite(scale) {
        let vals: [f64; 4] = COLS.map(|c| rs.metric(NAME, &w.abbr, c));
        for (t, v) in tot.iter_mut().zip(vals) {
            *t += v;
        }
        n += 1;
        r.row(&w.abbr, &vals, |x| format!("{x:.1}"));
    }
    let avg: Vec<f64> = tot.iter().map(|t| t / n.max(1) as f64).collect();
    r.row("AVG", &avg, |x| format!("{x:.1}"));
    r.blank();
    r.note("with more schedulers and pipelines, pressure on the single scalar");
    r.note("bank grows; G-Scalar's 16 (or 32) per-bank BVR arrays never");
    r.note("serialize (Section 4.1's scalability argument).");
    r.add_cycles(rs.sim_cycles(NAME));
}
