//! Extension study: one-cycle scalar dispatch (Section 6).
//!
//! The evaluated G-Scalar design clock-gates lanes but dispatches
//! scalar instructions over the normal multi-cycle warp occupancy
//! (Figure 11's IPC never exceeds the baseline). Section 6 notes that a
//! scalar instruction *could* retire its dispatch port in one cycle —
//! e.g. an 8-cycle SFU dispatch becomes 1. This study measures that
//! opportunity.

use gscalar_core::Arch;
use gscalar_sim::GpuConfig;
use gscalar_sweep::{JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::{mean, Report};

use super::{suite_grid, JobSim};

/// Registry name.
pub const NAME: &str = "abl_fast_dispatch";

/// One job per benchmark: baseline, G-Scalar, and G-Scalar with
/// one-cycle scalar dispatch, reduced to baseline-normalized IPC.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    suite_grid(NAME, scale, |w, ctx| {
        let cfg = GpuConfig::gtx480();
        let mut sim = JobSim::new(ctx);
        let run = |fast: bool, arch: Arch, sim: &mut JobSim| {
            let mut a = arch.config();
            a.scalar_fast_dispatch = fast;
            sim.run_stats(&cfg, a, w)
        };
        let base_s = run(false, Arch::Baseline, &mut sim)?;
        let gs_s = run(false, Arch::GScalar, &mut sim)?;
        let fast_s = run(true, Arch::GScalar, &mut sim)?;
        let base = base_s.ipc();
        let gs = gs_s.ipc() / base;
        let fast = fast_s.ipc() / base;
        let mut out = JobOutput {
            sim_cycles: base_s.cycles + gs_s.cycles + fast_s.cycles,
            ..JobOutput::default()
        };
        out.metric("G-Scalar", gs);
        out.metric("fast-disp", fast);
        out.metric("speedup%", 100.0 * (fast / gs - 1.0));
        Ok(out)
    })
}

/// Renders the fast-dispatch study from job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Extension: scalar fast dispatch (IPC normalized to baseline)");
    r.table(&["G-Scalar", "fast-disp", "speedup%"]);
    let mut gains = Vec::new();
    for w in suite(scale) {
        let gs = rs.metric(NAME, &w.abbr, "G-Scalar");
        let fast = rs.metric(NAME, &w.abbr, "fast-disp");
        let gain = rs.metric(NAME, &w.abbr, "speedup%");
        gains.push(gain);
        r.row(&w.abbr, &[gs, fast, gain], |x| format!("{x:.3}"));
    }
    let avg = mean(&gains);
    r.row_text("AVG", &["".into(), "".into(), format!("{avg:+.1}")]);
    r.metric("AVG/speedup%", avg);
    r.blank();
    r.note("SFU-heavy benchmarks benefit most: a scalar special-function");
    r.note("instruction frees the 4-lane SFU port after one cycle instead");
    r.note("of eight (Section 6's Fermi/GCN observation).");
    r.add_cycles(rs.sim_cycles(NAME));
}
