//! Table 2: the benchmark suite.

use gscalar_sweep::{JobId, JobOutput, JobSpec, ResultSet};
use gscalar_workloads::{suite, Scale};

use crate::Report;

/// Registry name.
pub const NAME: &str = "tab02_benchmarks";

/// A single job ("suite"): launch shapes and kernel sizes of every
/// workload as metrics.
pub fn grid(scale: Scale) -> Vec<JobSpec> {
    vec![JobSpec::new(JobId::new(NAME, "suite"), move |_ctx| {
        let mut out = JobOutput::default();
        for w in suite(scale) {
            out.metric(format!("{}/ctas", w.abbr), w.launch.grid.count() as f64);
            out.metric(format!("{}/block", w.abbr), w.launch.block.count() as f64);
            out.metric(format!("{}/instrs", w.abbr), w.kernel.len() as f64);
        }
        Ok(out)
    })]
}

/// Renders the suite table; names come from the static suite, numbers
/// from the job metrics.
pub fn render(r: &mut Report, rs: &ResultSet, scale: Scale) {
    r.title("Table 2: benchmarks (synthetic reproductions; see DESIGN.md)");
    r.note(&format!(
        "{:<12} {:<6} {:>8} {:>8} {:>8}",
        "benchmark", "abbr", "ctas", "block", "instrs"
    ));
    for w in suite(scale) {
        let ctas = rs.metric(NAME, "suite", &format!("{}/ctas", w.abbr));
        let block = rs.metric(NAME, "suite", &format!("{}/block", w.abbr));
        let instrs = rs.metric(NAME, "suite", &format!("{}/instrs", w.abbr));
        r.note(&format!(
            "{:<12} {:<6} {:>8} {:>8} {:>8}",
            w.name, w.abbr, ctas, block, instrs
        ));
        r.metric(&format!("{}/ctas", w.abbr), ctas);
        r.metric(&format!("{}/block", w.abbr), block);
        r.metric(&format!("{}/instrs", w.abbr), instrs);
    }
}
