//! Per-instruction profiler: runs a kernel with PC-level attribution
//! enabled and writes annotated disassembly plus hotspot and divergence
//! reports.
//!
//! ```sh
//! # Profile the built-in divergent example kernel (Figure 7b shape):
//! cargo run --release --bin profile
//!
//! # Profile a suite workload by paper abbreviation:
//! cargo run --release --bin profile -- BP
//!
//! # Write outputs into a directory and emit a JSON manifest:
//! cargo run --release --bin profile -- DIV --out out/ --json out/profile.json
//! ```
//!
//! Outputs (prefix `profile_<name>`, in `--out` or the current
//! directory):
//!
//! - `*_annotated.txt` — every disassembly line prefixed with issue
//!   share, stall share, average active lanes, dominant
//!   scalar-eligibility class and register-write compression ratio.
//! - `*_report.md` — top-N hotspots by cost (issues + attributed
//!   stalls) and the per-branch divergence/reconvergence table.
//!
//! With `--json [path]` the full per-PC table is flattened into a
//! schema-versioned manifest (`profile/k<id>/pc<PC>/…` keys), readable
//! by the `report` aggregator.
//!
//! The binary exits non-zero when the profile fails its reconciliation
//! invariants against the aggregate statistics — it doubles as the CI
//! profiling smoke test.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use gscalar_bench::Report;
use gscalar_core::{Arch, Runner};
use gscalar_profile::{annotate, branch_markdown, hotspot_markdown};
use gscalar_sim::GpuConfig;
use gscalar_workloads::{by_abbr, divergent_example, Scale};

/// Hotspot rows in the markdown report.
const TOP_N: usize = 10;

fn main() -> ExitCode {
    let mut abbr: Option<String> = None;
    let mut out_dir = PathBuf::from(".");
    let mut args = env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                let Some(dir) = args.next() else {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                };
                out_dir = PathBuf::from(dir);
            }
            "--json" => {
                // Handled by Report::new; skip its optional path value.
                if args.peek().is_some_and(|v| !v.starts_with("--")) {
                    args.next();
                }
            }
            "--scale" => {
                // Accepted for CLI uniformity; suite workloads always
                // profile at test scale.
                args.next();
            }
            other if !other.starts_with("--") => abbr = Some(other.to_string()),
            other => {
                eprintln!("unknown flag: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let workload = match abbr.as_deref() {
        None | Some("DIV") => divergent_example(),
        Some(a) => match by_abbr(a, Scale::Test) {
            Some(w) => w,
            None => {
                eprintln!("unknown benchmark abbreviation: {a} (try BP, LBM, MM, ... or DIV)");
                return ExitCode::FAILURE;
            }
        },
    };

    let cfg = GpuConfig::test_small();
    let runner = Runner::new(cfg.clone());
    let run = runner.run_profiled(&workload, Arch::GScalar);
    let stats = &run.report.stats;
    let profile = &run.profile;

    // Reconciliation gate: the per-PC attribution must account for
    // every issue slot and every idle scheduler cycle, exactly.
    let executed: Vec<usize> = profile.executed_pcs().collect();
    let mut ok = true;
    if executed.is_empty() {
        eprintln!("profile error: no executed PCs recorded");
        ok = false;
    }
    if profile.total_issues() != stats.pipe.issued {
        eprintln!(
            "profile error: per-PC issues {} != issued {}",
            profile.total_issues(),
            stats.pipe.issued
        );
        ok = false;
    }
    if profile.total_stall_cycles() != stats.pipe.scheduler_idle_cycles {
        eprintln!(
            "profile error: per-PC stalls {} != scheduler idle cycles {}",
            profile.total_stall_cycles(),
            stats.pipe.scheduler_idle_cycles
        );
        ok = false;
    }

    let annotated = annotate(&workload.kernel, profile);
    let md = format!(
        "{}\n{}",
        hotspot_markdown(&workload.kernel, profile, TOP_N),
        branch_markdown(&workload.kernel, profile)
    );

    fs::create_dir_all(&out_dir).expect("create output directory");
    let txt_path = out_dir.join(format!("profile_{}_annotated.txt", workload.name));
    let md_path = out_dir.join(format!("profile_{}_report.md", workload.name));
    fs::write(&txt_path, &annotated).expect("write annotated disassembly");
    fs::write(&md_path, &md).expect("write markdown report");

    println!("{annotated}");
    println!("{md}");
    println!(
        "workload {:<12} arch {:<10} cycles {:>8}  executed PCs {:>3}/{:<3}  issues {:>8}",
        workload.name,
        run.report.arch.label(),
        stats.cycles,
        executed.len(),
        workload.kernel.len(),
        stats.pipe.issued,
    );
    println!("wrote {}, {}", txt_path.display(), md_path.display());

    let mut r = Report::new("profile");
    r.config(&cfg);
    r.record_run(&workload.abbr, &run.report);
    for (path, v) in run.registry.flatten() {
        r.metric(&path, v);
    }
    r.finish();

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
