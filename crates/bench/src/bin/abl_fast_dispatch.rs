//! Extension study: one-cycle scalar dispatch (Section 6).
//!
//! The evaluated G-Scalar design clock-gates lanes but dispatches
//! scalar instructions over the normal multi-cycle warp occupancy
//! (Figure 11's IPC never exceeds the baseline). Section 6 notes that a
//! scalar instruction *could* retire its dispatch port in one cycle —
//! e.g. an 8-cycle SFU dispatch becomes 1. This study measures that
//! opportunity.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("abl_fast_dispatch")
}
