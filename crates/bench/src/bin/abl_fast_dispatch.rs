//! Extension study: one-cycle scalar dispatch (Section 6).
//!
//! The evaluated G-Scalar design clock-gates lanes but dispatches
//! scalar instructions over the normal multi-cycle warp occupancy
//! (Figure 11's IPC never exceeds the baseline). Section 6 notes that a
//! scalar instruction *could* retire its dispatch port in one cycle —
//! e.g. an 8-cycle SFU dispatch becomes 1. This study measures that
//! opportunity.

use gscalar_bench::{mean, Report};
use gscalar_core::Arch;
use gscalar_sim::{Gpu, GpuConfig};
use gscalar_workloads::{suite, Scale};

fn main() {
    let mut r = Report::new("abl_fast_dispatch");
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Extension: scalar fast dispatch (IPC normalized to baseline)");
    r.table(&["G-Scalar", "fast-disp", "speedup%"]);
    let mut gains = Vec::new();
    for w in suite(Scale::Full) {
        let mut cycles = 0u64;
        let mut run = |fast: bool, arch: Arch| {
            let mut a = arch.config();
            a.scalar_fast_dispatch = fast;
            let mut gpu = Gpu::new(cfg.clone(), a);
            let mut mem = w.memory.clone();
            let s = gpu.run(&w.kernel, w.launch, &mut mem);
            cycles += s.cycles;
            s.ipc()
        };
        let base = run(false, Arch::Baseline);
        let gs = run(false, Arch::GScalar) / base;
        let fast = run(true, Arch::GScalar) / base;
        let gain = 100.0 * (fast / gs - 1.0);
        gains.push(gain);
        r.add_cycles(cycles);
        r.row(&w.abbr, &[gs, fast, gain], |x| format!("{x:.3}"));
    }
    let avg = mean(&gains);
    r.row_text("AVG", &["".into(), "".into(), format!("{avg:+.1}")]);
    r.metric("AVG/speedup%", avg);
    r.blank();
    r.note("SFU-heavy benchmarks benefit most: a scalar special-function");
    r.note("instruction frees the 4-lane SFU port after one cycle instead");
    r.note("of eight (Section 6's Fermi/GCN observation).");
    r.finish();
}
