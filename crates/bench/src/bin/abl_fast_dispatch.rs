//! Extension study: one-cycle scalar dispatch (Section 6).
//!
//! The evaluated G-Scalar design clock-gates lanes but dispatches
//! scalar instructions over the normal multi-cycle warp occupancy
//! (Figure 11's IPC never exceeds the baseline). Section 6 notes that a
//! scalar instruction *could* retire its dispatch port in one cycle —
//! e.g. an 8-cycle SFU dispatch becomes 1. This study measures that
//! opportunity.

use gscalar_bench::{mean, row};
use gscalar_core::Arch;
use gscalar_sim::{Gpu, GpuConfig};
use gscalar_workloads::{suite, Scale};

fn main() {
    println!("Extension: scalar fast dispatch (IPC normalized to baseline)");
    println!(
        "{}",
        row(
            "bench",
            &["G-Scalar".into(), "fast-disp".into(), "speedup%".into()]
        )
    );
    let cfg = GpuConfig::gtx480();
    let mut gains = Vec::new();
    for w in suite(Scale::Full) {
        let run = |fast: bool, arch: Arch| {
            let mut a = arch.config();
            a.scalar_fast_dispatch = fast;
            let mut gpu = Gpu::new(cfg.clone(), a);
            let mut mem = w.memory.clone();
            gpu.run(&w.kernel, w.launch, &mut mem).ipc()
        };
        let base = run(false, Arch::Baseline);
        let gs = run(false, Arch::GScalar) / base;
        let fast = run(true, Arch::GScalar) / base;
        let gain = 100.0 * (fast / gs - 1.0);
        gains.push(gain);
        println!(
            "{}",
            row(
                &w.abbr,
                &[
                    format!("{gs:.3}"),
                    format!("{fast:.3}"),
                    format!("{gain:+.1}")
                ]
            )
        );
    }
    println!(
        "{}",
        row(
            "AVG",
            &["".into(), "".into(), format!("{:+.1}", mean(&gains))]
        )
    );
    println!();
    println!("SFU-heavy benchmarks benefit most: a scalar special-function");
    println!("instruction frees the 4-lane SFU port after one cycle instead");
    println!("of eight (Section 6's Fermi/GCN observation).");
}
