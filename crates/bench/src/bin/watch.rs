//! Live terminal dashboard over a telemetry stream.
//!
//! ```text
//! watch results/live.ndjson              # tail a stream file
//! watch 127.0.0.1:7878                   # subscribe to an SSE server
//! watch results/live.ndjson --once       # render once and exit
//! watch check results/live.ndjson        # strict validation (CI gate)
//! ```
//!
//! File mode tails by byte offset (partial trailing lines are kept
//! pending until their newline arrives), re-rendering every
//! `--interval-ms` until the stream's terminal record. Socket mode
//! connects to the in-process SSE server (`GET /runs/all/stream`) and
//! renders on every delivered record. `check` parses every line
//! strictly, prints per-type record counts, and exits nonzero unless
//! the stream holds at least one snapshot and one terminal record —
//! the assertion CI runs on smoke streams.

use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use gscalar_live::Dashboard;

/// Render width; fixed so output is stable across terminals.
const WIDTH: usize = 80;

const USAGE: &str = "usage:
  watch <file|addr> [--once] [--interval-ms N]   render a live dashboard
  watch check <file>                             validate a stream (CI gate)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("watch: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    let Some(first) = it.next() else {
        return Err(USAGE.into());
    };
    if first == "check" {
        let path = it
            .next()
            .ok_or_else(|| format!("check expects a file\n{USAGE}"))?;
        return check(Path::new(path));
    }
    let mut once = false;
    let mut interval_ms: u64 = 250;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--once" => once = true,
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--interval-ms expects a number")?;
            }
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    match first.parse::<SocketAddr>() {
        Ok(addr) => watch_socket(addr, once),
        Err(_) => watch_file(Path::new(first), once, interval_ms),
    }
}

/// Strict stream validation: every line must parse, and the stream must
/// contain at least one interval snapshot and one terminal record.
fn check(path: &Path) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut dash = Dashboard::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        dash.feed_line(line)
            .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
    }
    let counts = dash.counts();
    for (ty, n) in counts {
        println!("{ty:<12} {n}");
    }
    let snapshots = counts.get("snapshot").copied().unwrap_or(0);
    let terminals = ["run_end", "sweep_end", "stream_end"]
        .iter()
        .map(|t| counts.get(t).copied().unwrap_or(0))
        .sum::<u64>();
    if snapshots == 0 {
        return Err(format!("{}: no snapshot records", path.display()));
    }
    if terminals == 0 {
        return Err(format!("{}: no terminal record", path.display()));
    }
    println!("ok: {snapshots} snapshot(s), {terminals} terminal record(s)");
    Ok(ExitCode::SUCCESS)
}

/// Redraw: clear screen, home the cursor, print the dashboard.
fn draw(dash: &Dashboard) {
    print!("\x1b[2J\x1b[H{}", dash.render(WIDTH));
    let _ = std::io::stdout().flush();
}

fn watch_file(path: &Path, once: bool, interval_ms: u64) -> Result<ExitCode, String> {
    let mut dash = Dashboard::new();
    let mut offset: u64 = 0;
    let mut pending = String::new();
    let mut bad_lines: u64 = 0;
    loop {
        let mut f = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let mut chunk = String::new();
        let read = std::io::Read::read_to_string(&mut f, &mut chunk)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        offset += read as u64;
        pending.push_str(&chunk);
        // Feed every complete line; keep a partial trailing line for
        // the next poll.
        while let Some(nl) = pending.find('\n') {
            let line: String = pending.drain(..=nl).collect();
            let line = line.trim_end();
            if !line.is_empty() && dash.feed_line(line).is_err() {
                bad_lines += 1;
            }
        }
        if once {
            println!("{}", dash.render(WIDTH));
            break;
        }
        draw(&dash);
        if dash.ended() {
            break;
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(1)));
    }
    if bad_lines > 0 {
        eprintln!("watch: {bad_lines} unparseable line(s) skipped");
    }
    Ok(ExitCode::SUCCESS)
}

fn watch_socket(addr: SocketAddr, once: bool) -> Result<ExitCode, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
    writer
        .write_all(format!("GET /runs/all/stream HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("{addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    // Drain the HTTP response headers.
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("{addr}: {e}"))?;
        if n == 0 || line.trim_end().is_empty() {
            break;
        }
    }
    let mut dash = Dashboard::new();
    let mut bad_lines: u64 = 0;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("{addr}: {e}"))?;
        if n == 0 {
            break; // server went away
        }
        let trimmed = line.trim_end();
        if trimmed.starts_with("event: end") {
            break;
        }
        if let Some(payload) = trimmed.strip_prefix("data: ") {
            if dash.feed_line(payload).is_err() {
                bad_lines += 1;
            }
            if !once {
                draw(&dash);
            }
        }
        if dash.ended() {
            break;
        }
    }
    if once {
        println!("{}", dash.render(WIDTH));
    } else {
        draw(&dash);
    }
    if bad_lines > 0 {
        eprintln!("watch: {bad_lines} unparseable line(s) skipped");
    }
    Ok(ExitCode::SUCCESS)
}
