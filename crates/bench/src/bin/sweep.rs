//! Reproduce every figure and table of the paper in one command.
//!
//! ```text
//! sweep --all --threads 4 --out results/
//! sweep fig11_power_efficiency probe --scale test
//! sweep --list
//! ```
//!
//! The sweep shards the (experiment × benchmark) job grid across a
//! work-stealing thread pool, isolates every job (panic containment,
//! optional `--budget` cycle cap, bounded retry), and persists each
//! completed job as a schema-v1 manifest under `<out>/jobs/`. Rerunning
//! over the same `--out` directory resumes: completed jobs are loaded
//! instead of re-executed (`--fresh` discards them). Per-experiment
//! tables land in `<out>/<name>.txt` + deterministic `<out>/<name>.json`,
//! plus an aggregate `dashboard.md` and a merged `BENCH_sweep.json`.
//! Manifests are byte-identical regardless of thread count or schedule.

use std::path::PathBuf;
use std::process::ExitCode;

use gscalar_bench::experiments::{self, Experiment};
use gscalar_bench::Report;
use gscalar_metrics::{aggregate_markdown, merge_manifests, Manifest};
use gscalar_sweep::{run_sweep, JobSpec, Progress, SweepConfig};
use gscalar_workloads::Scale;

struct Options {
    all: bool,
    list: bool,
    fresh: bool,
    names: Vec<String>,
    scale: Scale,
    threads: usize,
    sim_threads: usize,
    budget: u64,
    retries: u32,
    out: Option<PathBuf>,
    live: Option<String>,
    live_interval: u64,
    deterministic: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        all: false,
        list: false,
        fresh: false,
        names: Vec::new(),
        scale: Scale::Full,
        threads: 1,
        sim_threads: 1,
        budget: 0,
        retries: 1,
        out: None,
        live: None,
        live_interval: gscalar_live::DEFAULT_SNAPSHOT_INTERVAL,
        deterministic: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} expects a value"));
        match a.as_str() {
            "--all" => o.all = true,
            "--list" => o.list = true,
            "--fresh" => o.fresh = true,
            "--scale" => {
                o.scale = match value("--scale")?.as_str() {
                    "test" => Scale::Test,
                    _ => Scale::Full,
                }
            }
            "--threads" => {
                o.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--sim-threads" => {
                o.sim_threads = value("--sim-threads")?
                    .parse()
                    .map_err(|e| format!("--sim-threads: {e}"))?;
            }
            "--budget" => {
                o.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?;
            }
            "--retries" => {
                o.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--out" => o.out = Some(PathBuf::from(value("--out")?)),
            "--live" => o.live = Some(value("--live")?),
            "--live-interval" => {
                o.live_interval = value("--live-interval")?
                    .parse()
                    .map_err(|e| format!("--live-interval: {e}"))?;
            }
            "--deterministic" => o.deterministic = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other} (see sweep --list)"));
            }
            name => o.names.push(name.to_string()),
        }
    }
    Ok(o)
}

fn select(o: &Options) -> Result<Vec<Experiment>, String> {
    if o.all {
        return Ok(experiments::all());
    }
    if o.names.is_empty() {
        return Err("nothing to run: pass experiment names, --all, or --list".into());
    }
    o.names
        .iter()
        .map(|n| {
            experiments::by_name(n).ok_or_else(|| format!("unknown experiment {n} (see --list)"))
        })
        .collect()
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("sweep: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let o = parse_args()?;
    if o.list {
        for e in experiments::all() {
            println!("{:<26} {}", e.name, e.about);
        }
        return Ok(ExitCode::SUCCESS);
    }
    // Live telemetry is advisory: run snapshots stream through the
    // globally installed handle, sweep lifecycle events through
    // `SweepConfig::live`. Closed (flushing the terminal `stream_end`)
    // whether the sweep succeeds or fails.
    let live = match &o.live {
        None => None,
        Some(target) => Some(
            gscalar_live::open_target(
                target,
                gscalar_live::StreamConfig {
                    deterministic: o.deterministic,
                    snapshot_interval: o.live_interval,
                    ..gscalar_live::StreamConfig::default()
                },
            )
            .map_err(|e| format!("--live: {e}"))?,
        ),
    };
    if let Some(h) = &live {
        gscalar_live::install(h.clone());
    }
    let result = run_selected(&o, live.clone());
    if let Some(h) = live {
        gscalar_live::uninstall();
        h.close();
    }
    result
}

fn run_selected(o: &Options, live: Option<gscalar_live::LiveHandle>) -> Result<ExitCode, String> {
    let exps = select(o)?;

    // Simulator-level parallelism (within one job) on top of job-level
    // parallelism; byte-identical results make the combination safe.
    gscalar_sim::config::set_default_exec_threads(o.sim_threads);

    // Build the whole job grid in registry order; job IDs are
    // deterministic, so the merged output never depends on scheduling.
    let mut specs: Vec<JobSpec> = Vec::new();
    for e in &exps {
        specs.extend((e.grid)(o.scale));
    }
    if o.budget > 0 {
        for s in &mut specs {
            s.cycle_budget = o.budget;
        }
    }
    if o.fresh {
        if let Some(out) = &o.out {
            let jobs = out.join("jobs");
            if jobs.exists() {
                std::fs::remove_dir_all(&jobs).map_err(|e| format!("{}: {e}", jobs.display()))?;
            }
        }
    }

    let cfg = SweepConfig {
        threads: o.threads,
        out_dir: o.out.clone(),
        max_retries: o.retries,
        progress: Progress::PerJob,
        live,
    };
    eprintln!(
        "sweep: {} jobs across {} experiments on {} thread(s)",
        specs.len(),
        exps.len(),
        gscalar_sweep::resolve_threads(o.threads)
    );
    let outcome = run_sweep(&specs, &cfg);
    eprintln!(
        "sweep: {} executed, {} resumed, {} failed in {:.1}s",
        outcome.executed,
        outcome.resumed,
        outcome.failures.len(),
        outcome.wall_s
    );

    // Render every fully-completed experiment; experiments with failed
    // jobs are skipped (their failure records are already on disk /
    // reported below).
    let failed = outcome.failed_experiments();
    let mut manifests: Vec<Manifest> = Vec::new();
    for e in &exps {
        if failed.iter().any(|f| f == e.name) {
            eprintln!("sweep: skipping render of {} (failed jobs)", e.name);
            continue;
        }
        let manifest = match &o.out {
            Some(out) => {
                let txt_path = out.join(format!("{}.txt", e.name));
                let file = std::fs::File::create(&txt_path)
                    .map_err(|err| format!("{}: {err}", txt_path.display()))?;
                let mut r = Report::to_writer(
                    e.name,
                    Some(out.join(format!("{}.json", e.name))),
                    Box::new(file),
                );
                r.set_deterministic(true);
                (e.render)(&mut r, &outcome.results, o.scale);
                r.finish()
            }
            None => {
                let mut r = Report::to_writer(e.name, None, Box::new(std::io::stdout()));
                r.set_deterministic(true);
                (e.render)(&mut r, &outcome.results, o.scale);
                r.finish()
            }
        };
        manifests.extend(manifest);
    }

    // Aggregate: a human dashboard plus one merged manifest for the
    // regression gate (`report compare`).
    if let Some(out) = &o.out {
        if !manifests.is_empty() {
            std::fs::write(out.join("dashboard.md"), aggregate_markdown(&manifests))
                .map_err(|e| format!("{}: {e}", out.join("dashboard.md").display()))?;
            let merged = merge_manifests(&manifests, "sweep");
            std::fs::write(out.join("BENCH_sweep.json"), merged.to_json())
                .map_err(|e| format!("{}: {e}", out.join("BENCH_sweep.json").display()))?;
            eprintln!(
                "sweep: wrote {} experiment reports + dashboard.md to {}",
                manifests.len(),
                out.display()
            );
        }
    }

    if !outcome.failures.is_empty() {
        for f in &outcome.failures {
            eprintln!(
                "sweep: job {} failed ({}, {} attempt(s)): {}",
                f.job, f.kind, f.attempts, f.message
            );
        }
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
