//! Extension study: scalar-bank scalability on a scaled-up "future GPU"
//! (Section 4.1).
//!
//! The paper argues that a single dedicated scalar bank does not scale:
//! "future GPUs also tend to have more hardware resources, such as
//! larger register file with more banks and more SIMT execution
//! pipelines. Thus, relying on only a single bank for scalar values may
//! not be a scalable approach." This study doubles the SM's front-end
//! and execution resources and compares the prior-work design's
//! scalar-bank serialization against G-Scalar's per-bank BVR arrays.

use gscalar_bench::Report;
use gscalar_core::Arch;
use gscalar_sim::{Gpu, GpuConfig};
use gscalar_workloads::{suite, Scale};

fn future_gpu() -> GpuConfig {
    let mut c = GpuConfig::gtx480();
    c.schedulers = 4;
    c.alu_pipes = 4;
    c.operand_collectors = 32;
    c.rf_banks = 32;
    c.regs_per_sm = 64 * 1024;
    c.threads_per_sm = 2048;
    c
}

fn main() {
    let mut r = Report::new("abl_future_gpu");
    let now = GpuConfig::gtx480();
    let fut = future_gpu();
    r.config(&now);
    r.title("Extension: scalar-bank serializations per 1k instructions");
    r.table(&["gtx480", "future", "gs-480", "gs-fut"]);
    let mut tot = [0.0f64; 4];
    let mut n = 0usize;
    for w in suite(Scale::Full) {
        let mut cycles = 0u64;
        let mut run = |cfg: &GpuConfig, arch: Arch| {
            let mut gpu = Gpu::new(cfg.clone(), arch.config());
            let mut mem = w.memory.clone();
            let s = gpu.run(&w.kernel, w.launch, &mut mem);
            cycles += s.cycles;
            1000.0 * s.pipe.scalar_bank_serializations as f64 / s.instr.warp_instrs as f64
        };
        let vals = [
            run(&now, Arch::AluScalar),
            run(&fut, Arch::AluScalar),
            run(&now, Arch::GScalar),
            run(&fut, Arch::GScalar),
        ];
        for (t, v) in tot.iter_mut().zip(vals) {
            *t += v;
        }
        n += 1;
        r.add_cycles(cycles);
        r.row(&w.abbr, &vals, |x| format!("{x:.1}"));
    }
    let avg: Vec<f64> = tot.iter().map(|t| t / n.max(1) as f64).collect();
    r.row("AVG", &avg, |x| format!("{x:.1}"));
    r.blank();
    r.note("with more schedulers and pipelines, pressure on the single scalar");
    r.note("bank grows; G-Scalar's 16 (or 32) per-bank BVR arrays never");
    r.note("serialize (Section 4.1's scalability argument).");
    r.finish();
}
