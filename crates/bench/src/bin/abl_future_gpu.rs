//! Extension study: scalar-bank scalability on a scaled-up "future GPU"
//! (Section 4.1).
//!
//! The paper argues that a single dedicated scalar bank does not scale:
//! "future GPUs also tend to have more hardware resources, such as
//! larger register file with more banks and more SIMT execution
//! pipelines. Thus, relying on only a single bank for scalar values may
//! not be a scalable approach." This study doubles the SM's front-end
//! and execution resources and compares the prior-work design's
//! scalar-bank serialization against G-Scalar's per-bank BVR arrays.

use gscalar_bench::row;
use gscalar_core::Arch;
use gscalar_sim::{Gpu, GpuConfig};
use gscalar_workloads::{suite, Scale};

fn future_gpu() -> GpuConfig {
    let mut c = GpuConfig::gtx480();
    c.schedulers = 4;
    c.alu_pipes = 4;
    c.operand_collectors = 32;
    c.rf_banks = 32;
    c.regs_per_sm = 64 * 1024;
    c.threads_per_sm = 2048;
    c
}

fn main() {
    println!("Extension: scalar-bank serializations per 1k instructions");
    println!(
        "{}",
        row(
            "bench",
            &[
                "gtx480".into(),
                "future".into(),
                "gs-480".into(),
                "gs-fut".into()
            ]
        )
    );
    let now = GpuConfig::gtx480();
    let fut = future_gpu();
    let mut tot = [0.0f64; 4];
    for w in suite(Scale::Full) {
        let run = |cfg: &GpuConfig, arch: Arch| {
            let mut gpu = Gpu::new(cfg.clone(), arch.config());
            let mut mem = w.memory.clone();
            let s = gpu.run(&w.kernel, w.launch, &mut mem);
            1000.0 * s.pipe.scalar_bank_serializations as f64 / s.instr.warp_instrs as f64
        };
        let vals = [
            run(&now, Arch::AluScalar),
            run(&fut, Arch::AluScalar),
            run(&now, Arch::GScalar),
            run(&fut, Arch::GScalar),
        ];
        for (t, v) in tot.iter_mut().zip(vals) {
            *t += v;
        }
        let cells: Vec<String> = vals.iter().map(|v| format!("{v:.1}")).collect();
        println!("{}", row(&w.abbr, &cells));
    }
    let avg: Vec<String> = tot.iter().map(|t| format!("{:.1}", t / 17.0)).collect();
    println!("{}", row("AVG", &avg));
    println!();
    println!("with more schedulers and pipelines, pressure on the single scalar");
    println!("bank grows; G-Scalar's 16 (or 32) per-bank BVR arrays never");
    println!("serialize (Section 4.1's scalability argument).");
}
