//! Extension study: scalar-bank scalability on a scaled-up "future GPU"
//! (Section 4.1).
//!
//! The paper argues that a single dedicated scalar bank does not scale:
//! "future GPUs also tend to have more hardware resources, such as
//! larger register file with more banks and more SIMT execution
//! pipelines. Thus, relying on only a single bank for scalar values may
//! not be a scalable approach." This study doubles the SM's front-end
//! and execution resources and compares the prior-work design's
//! scalar-bank serialization against G-Scalar's per-bank BVR arrays.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("abl_future_gpu")
}
