//! Figure 10: instructions eligible for half-(quarter-)warp scalar
//! execution for warp sizes 32 and 64 (16-thread checking granularity).

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("fig10_warp_size")
}
