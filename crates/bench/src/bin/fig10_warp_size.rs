//! Figure 10: instructions eligible for half-(quarter-)warp scalar
//! execution for warp sizes 32 and 64 (16-thread checking granularity).

use gscalar_bench::{mean, Report};
use gscalar_core::{Arch, Runner};
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};

fn main() {
    let mut r = Report::new("fig10_warp_size");
    let cfg32 = GpuConfig::gtx480();
    let mut cfg64 = GpuConfig::gtx480();
    cfg64.warp_size = 64;
    r.config(&cfg32);
    r.title("Figure 10: half-scalar eligibility vs warp size");
    r.table(&["warp32%", "warp64%"]);
    let r32 = Runner::new(cfg32);
    let r64 = Runner::new(cfg64);
    let mut a32 = Vec::new();
    let mut a64 = Vec::new();
    for w in suite(Scale::Full) {
        let s32 = r32.run(&w, Arch::Baseline).stats;
        let s64 = r64.run(&w, Arch::Baseline).stats;
        let h32 = 100.0 * s32.instr.eligible_half as f64 / s32.instr.warp_instrs as f64;
        let h64 = 100.0 * s64.instr.eligible_half as f64 / s64.instr.warp_instrs as f64;
        a32.push(h32);
        a64.push(h64);
        r.add_cycles(s32.cycles + s64.cycles);
        r.row(&w.abbr, &[h32, h64], |x| format!("{x:.1}"));
    }
    r.row("AVG", &[mean(&a32), mean(&a64)], |x| format!("{x:.1}"));
    r.blank();
    r.note("paper: average half-scalar ~2% at warp 32, rising to ~5% at warp 64");
    r.note("(full-warp-scalar instructions of two merged 32-thread warps become");
    r.note("half-scalar at warp 64).");
    r.finish();
}
