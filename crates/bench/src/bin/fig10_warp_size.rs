//! Figure 10: instructions eligible for half-(quarter-)warp scalar
//! execution for warp sizes 32 and 64 (16-thread checking granularity).

use gscalar_bench::{mean, row};
use gscalar_core::{Arch, Runner};
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};

fn main() {
    println!("Figure 10: half-scalar eligibility vs warp size");
    println!("{}", row("bench", &["warp32%".into(), "warp64%".into()]));
    let cfg32 = GpuConfig::gtx480();
    let mut cfg64 = GpuConfig::gtx480();
    cfg64.warp_size = 64;
    let r32 = Runner::new(cfg32);
    let r64 = Runner::new(cfg64);
    let mut a32 = Vec::new();
    let mut a64 = Vec::new();
    for w in suite(Scale::Full) {
        let s32 = r32.run(&w, Arch::Baseline).stats;
        let s64 = r64.run(&w, Arch::Baseline).stats;
        let h32 = 100.0 * s32.instr.eligible_half as f64 / s32.instr.warp_instrs as f64;
        let h64 = 100.0 * s64.instr.eligible_half as f64 / s64.instr.warp_instrs as f64;
        a32.push(h32);
        a64.push(h64);
        println!(
            "{}",
            row(&w.abbr, &[format!("{h32:.1}"), format!("{h64:.1}")])
        );
    }
    println!(
        "{}",
        row(
            "AVG",
            &[format!("{:.1}", mean(&a32)), format!("{:.1}", mean(&a64))]
        )
    );
    println!();
    println!("paper: average half-scalar ~2% at warp 32, rising to ~5% at warp 64");
    println!("(full-warp-scalar instructions of two merged 32-thread warps become");
    println!("half-scalar at warp 64).");
}
