//! Table 3: compressor/decompressor synthesis results and the chip-level
//! overhead arithmetic of Section 5.1.

use gscalar_bench::Report;
use gscalar_power::synthesis::{
    rf_area_overhead_fraction, sm_overhead, COMPRESSOR, COMPRESSORS_PER_SM, DECOMPRESSOR,
    DECOMPRESSORS_PER_SM,
};

fn main() {
    let mut r = Report::new("tab03_synthesis");
    r.title("Table 3: encoder/decoder synthesis at 1.4 GHz (40 nm, incl. pipeline regs)");
    println!(
        "{:<14} {:>12} {:>10} {:>10}",
        "", "area (um^2)", "delay(ns)", "power(mW)"
    );
    println!(
        "{:<14} {:>12.0} {:>10.2} {:>10.2}",
        "decompressor", DECOMPRESSOR.area_um2, DECOMPRESSOR.delay_ns, DECOMPRESSOR.power_mw
    );
    println!(
        "{:<14} {:>12.0} {:>10.2} {:>10.2}",
        "compressor", COMPRESSOR.area_um2, COMPRESSOR.delay_ns, COMPRESSOR.power_mw
    );
    for (name, s) in [("decompressor", &DECOMPRESSOR), ("compressor", &COMPRESSOR)] {
        r.metric(&format!("{name}/area_um2"), s.area_um2);
        r.metric(&format!("{name}/delay_ns"), s.delay_ns);
        r.metric(&format!("{name}/power_mw"), s.power_mw);
    }
    let o = sm_overhead();
    r.blank();
    r.note(&format!(
        "per SM: {} decompressors + {} compressors = {:.2} W, {:.3} mm^2",
        DECOMPRESSORS_PER_SM, COMPRESSORS_PER_SM, o.power_w, o.area_mm2
    ));
    r.metric("sm_overhead/power_w", o.power_w);
    r.metric("sm_overhead/area_mm2", o.area_mm2);
    let full = 100.0 * rf_area_overhead_fraction(false);
    let half = 100.0 * rf_area_overhead_fraction(true);
    r.note(&format!(
        "RF area overhead: {full:.0}% (full-register), {half:.0}% (half-register)"
    ));
    r.metric("rf_area_overhead/full_pct", full);
    r.metric("rf_area_overhead/half_pct", half);
    r.note("paper: 0.32 W (1.6%) and 0.16 mm^2 (0.7%) per SM; RF +3%/+7%.");
    r.finish();
}
