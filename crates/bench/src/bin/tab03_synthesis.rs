//! Table 3: compressor/decompressor synthesis results and the chip-level
//! overhead arithmetic of Section 5.1.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("tab03_synthesis")
}
