//! Figure 9: percentage of instructions eligible for scalar execution,
//! cumulative over the paper's categories.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("fig09_scalar_eligibility")
}
