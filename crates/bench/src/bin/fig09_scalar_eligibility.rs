//! Figure 9: percentage of instructions eligible for scalar execution,
//! cumulative over the paper's categories.

use gscalar_bench::{mean, row, run_suite};
use gscalar_core::Arch;
use gscalar_sim::GpuConfig;

fn main() {
    println!("Figure 9: instructions eligible for scalar execution (cumulative)");
    let head: Vec<String> = ["ALU%", "all%", "half%", "diverg%"]
        .iter()
        .map(|s| (*s).into())
        .collect();
    println!("{}", row("bench", &head));
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (abbr, r) in run_suite(Arch::Baseline, &GpuConfig::gtx480()) {
        let i = &r.stats.instr;
        let wi = i.warp_instrs as f64;
        let alu = 100.0 * i.eligible_alu as f64 / wi;
        let all = alu + 100.0 * (i.eligible_sfu + i.eligible_mem) as f64 / wi;
        let half = all + 100.0 * i.eligible_half as f64 / wi;
        let div = half + 100.0 * i.eligible_divergent as f64 / wi;
        for (c, v) in cols.iter_mut().zip([alu, all, half, div]) {
            c.push(v);
        }
        let cells: Vec<String> = [alu, all, half, div]
            .iter()
            .map(|x| format!("{x:.1}"))
            .collect();
        println!("{}", row(&abbr, &cells));
    }
    let avg: Vec<String> = cols.iter().map(|c| format!("{:.1}", mean(c))).collect();
    println!("{}", row("AVG", &avg));
    println!();
    println!("paper: ALU scalar 22%; +7% SFU/memory; +2% half; +9% divergent = 40%.");
}
