//! Figure 9: percentage of instructions eligible for scalar execution,
//! cumulative over the paper's categories.

use gscalar_bench::{mean, run_suite, Report};
use gscalar_core::Arch;
use gscalar_sim::GpuConfig;

fn main() {
    let mut r = Report::new("fig09_scalar_eligibility");
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Figure 9: instructions eligible for scalar execution (cumulative)");
    r.table(&["ALU%", "all%", "half%", "diverg%"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (abbr, report) in run_suite(Arch::Baseline, &cfg) {
        let i = &report.stats.instr;
        let wi = i.warp_instrs as f64;
        let alu = 100.0 * i.eligible_alu as f64 / wi;
        let all = alu + 100.0 * (i.eligible_sfu + i.eligible_mem) as f64 / wi;
        let half = all + 100.0 * i.eligible_half as f64 / wi;
        let div = half + 100.0 * i.eligible_divergent as f64 / wi;
        for (c, v) in cols.iter_mut().zip([alu, all, half, div]) {
            c.push(v);
        }
        r.add_cycles(report.stats.cycles);
        r.row(&abbr, &[alu, all, half, div], |x| format!("{x:.1}"));
    }
    let avg: Vec<f64> = cols.iter().map(|c| mean(c)).collect();
    r.row("AVG", &avg, |x| format!("{x:.1}"));
    r.blank();
    r.note("paper: ALU scalar 22%; +7% SFU/memory; +2% half; +9% divergent = 40%.");
    r.finish();
}
