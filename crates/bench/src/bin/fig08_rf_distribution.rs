//! Figure 8: register-file access distribution for operand values.

use gscalar_bench::{mean, run_suite, Report};
use gscalar_core::Arch;
use gscalar_sim::GpuConfig;

fn main() {
    let mut r = Report::new("fig08_rf_distribution");
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Figure 8: RF access distribution (operand value similarity)");
    r.table(&[
        "scalar%", "3-byte%", "2-byte%", "1-byte%", "other%", "diverg%",
    ]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for (abbr, report) in run_suite(Arch::Baseline, &cfg) {
        let f = report.stats.rf.histogram.fractions();
        let vals: Vec<f64> = f.iter().map(|x| 100.0 * x).collect();
        for (c, v) in cols.iter_mut().zip(&vals) {
            c.push(*v);
        }
        r.add_cycles(report.stats.cycles);
        r.row(&abbr, &vals, |x| format!("{x:.1}"));
    }
    let avg: Vec<f64> = cols.iter().map(|c| mean(c)).collect();
    r.row("AVG", &avg, |x| format!("{x:.1}"));
    r.blank();
    r.note("paper: avg scalar 36%, 3-byte 17%, 2-byte 4%, 1-byte 7%.");
    r.finish();
}
