//! Figure 8: register-file access distribution for operand values.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("fig08_rf_distribution")
}
