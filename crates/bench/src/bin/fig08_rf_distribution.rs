//! Figure 8: register-file access distribution for operand values.

use gscalar_bench::{mean, row, run_suite};
use gscalar_core::Arch;
use gscalar_sim::GpuConfig;

fn main() {
    println!("Figure 8: RF access distribution (operand value similarity)");
    let head: Vec<String> = [
        "scalar%", "3-byte%", "2-byte%", "1-byte%", "other%", "diverg%",
    ]
    .iter()
    .map(|s| (*s).into())
    .collect();
    println!("{}", row("bench", &head));
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for (abbr, r) in run_suite(Arch::Baseline, &GpuConfig::gtx480()) {
        let f = r.stats.rf.histogram.fractions();
        let cells: Vec<String> = f.iter().map(|x| format!("{:.1}", 100.0 * x)).collect();
        for (i, x) in f.iter().enumerate() {
            cols[i].push(100.0 * x);
        }
        println!("{}", row(&abbr, &cells));
    }
    let avg: Vec<String> = cols.iter().map(|c| format!("{:.1}", mean(c))).collect();
    println!("{}", row("AVG", &avg));
    println!();
    println!("paper: avg scalar 36%, 3-byte 17%, 2-byte 4%, 1-byte 7%.");
}
