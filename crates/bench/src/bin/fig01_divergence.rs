//! Figure 1: percentage of divergent instructions and divergent scalar
//! instructions in total instructions, per benchmark.

use gscalar_bench::{mean, row, run_suite};
use gscalar_core::Arch;
use gscalar_sim::GpuConfig;

fn main() {
    println!("Figure 1: divergent / divergent-scalar instruction fractions");
    println!(
        "{}",
        row("bench", &["divergent%".into(), "div-scalar%".into()])
    );
    let mut divs = Vec::new();
    let mut dscals = Vec::new();
    for (abbr, r) in run_suite(Arch::Baseline, &GpuConfig::gtx480()) {
        let wi = r.stats.instr.warp_instrs as f64;
        let d = 100.0 * r.stats.instr.divergent_instrs as f64 / wi;
        let ds = 100.0 * r.stats.instr.eligible_divergent as f64 / wi;
        divs.push(d);
        dscals.push(ds);
        println!("{}", row(&abbr, &[format!("{d:.1}"), format!("{ds:.1}")]));
    }
    println!(
        "{}",
        row(
            "AVG",
            &[
                format!("{:.1}", mean(&divs)),
                format!("{:.1}", mean(&dscals))
            ]
        )
    );
    println!();
    println!("paper: avg 28% divergent; 45% of divergent instructions are");
    println!("divergent-scalar (i.e. ~12.6% of total).");
    println!(
        "measured: {:.1}% divergent; {:.0}% of divergent are divergent-scalar.",
        mean(&divs),
        100.0 * mean(&dscals) / mean(&divs).max(1e-9)
    );
}
