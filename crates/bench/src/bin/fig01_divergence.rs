//! Figure 1: percentage of divergent instructions and divergent scalar
//! instructions in total instructions, per benchmark.

use gscalar_bench::{mean, run_suite, Report};
use gscalar_core::Arch;
use gscalar_sim::GpuConfig;

fn main() {
    let mut r = Report::new("fig01_divergence");
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Figure 1: divergent / divergent-scalar instruction fractions");
    r.table(&["divergent%", "div-scalar%"]);
    let mut divs = Vec::new();
    let mut dscals = Vec::new();
    for (abbr, report) in run_suite(Arch::Baseline, &cfg) {
        let wi = report.stats.instr.warp_instrs as f64;
        let d = 100.0 * report.stats.instr.divergent_instrs as f64 / wi;
        let ds = 100.0 * report.stats.instr.eligible_divergent as f64 / wi;
        divs.push(d);
        dscals.push(ds);
        r.add_cycles(report.stats.cycles);
        r.row(&abbr, &[d, ds], |x| format!("{x:.1}"));
    }
    r.row("AVG", &[mean(&divs), mean(&dscals)], |x| format!("{x:.1}"));
    r.blank();
    r.note("paper: avg 28% divergent; 45% of divergent instructions are");
    r.note("divergent-scalar (i.e. ~12.6% of total).");
    r.note(&format!(
        "measured: {:.1}% divergent; {:.0}% of divergent are divergent-scalar.",
        mean(&divs),
        100.0 * mean(&dscals) / mean(&divs).max(1e-9)
    ));
    r.finish();
}
