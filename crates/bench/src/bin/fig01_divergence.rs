//! Figure 1: percentage of divergent instructions and divergent scalar
//! instructions in total instructions, per benchmark — plus the
//! per-branch attribution of that divergence from the PC-level
//! profiler: for every benchmark, which static branch diverges, how
//! often, and what share of the benchmark's divergent instructions its
//! paths account for.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("fig01_divergence")
}
