//! Figure 1: percentage of divergent instructions and divergent scalar
//! instructions in total instructions, per benchmark — plus the
//! per-branch attribution of that divergence from the PC-level
//! profiler: for every benchmark, which static branch diverges, how
//! often, and what share of the benchmark's divergent instructions its
//! paths account for.

use gscalar_bench::{mean, row, Report};
use gscalar_core::{Arch, Runner};
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};

fn main() {
    let mut r = Report::new("fig01_divergence");
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    let runner = Runner::new(cfg.clone());
    r.title("Figure 1: divergent / divergent-scalar instruction fractions");
    r.table(&["divergent%", "div-scalar%"]);
    let mut divs = Vec::new();
    let mut dscals = Vec::new();
    // Per-benchmark divergent-branch rows, rendered after the main
    // table: (abbr, pc, execs, diverged, div-instr share, disasm).
    let mut branch_rows: Vec<(String, usize, u64, u64, f64, String)> = Vec::new();
    for w in suite(Scale::Full) {
        let run = runner.run_profiled(&w, Arch::Baseline);
        let stats = &run.report.stats;
        let wi = stats.instr.warp_instrs as f64;
        let d = 100.0 * stats.instr.divergent_instrs as f64 / wi;
        let ds = 100.0 * stats.instr.eligible_divergent as f64 / wi;
        divs.push(d);
        dscals.push(ds);
        r.add_cycles(stats.cycles);
        r.row(&w.abbr, &[d, ds], |x| format!("{x:.1}"));
        // Attribute the benchmark's divergent instructions to branches:
        // every divergent issue happens on the path below some diverged
        // branch, so the diverged branches (sorted by diverged count)
        // tell *where* Figure 1's divergence comes from.
        let total_div = stats.instr.divergent_instrs.max(1) as f64;
        for pc in run.profile.executed_pcs() {
            let rec = run.profile.record(pc);
            if rec.branch.diverged == 0 {
                continue;
            }
            // Divergent issues on the instructions strictly between the
            // branch and its reconvergence point ran under this branch.
            let reconv = w
                .kernel
                .reconvergence_pc(pc)
                .unwrap_or_else(|| w.kernel.len());
            let under: u64 = (pc + 1..reconv)
                .map(|q| run.profile.record(q).divergent_issues)
                .sum();
            let share = 100.0 * under as f64 / total_div;
            r.metric(
                &format!("{}/branch{pc}/execs", w.abbr),
                rec.branch.execs as f64,
            );
            r.metric(
                &format!("{}/branch{pc}/diverged", w.abbr),
                rec.branch.diverged as f64,
            );
            r.metric(&format!("{}/branch{pc}/div_share%", w.abbr), share);
            branch_rows.push((
                w.abbr.clone(),
                pc,
                rec.branch.execs,
                rec.branch.diverged,
                share,
                w.kernel.instr(pc).to_string(),
            ));
        }
    }
    r.row("AVG", &[mean(&divs), mean(&dscals)], |x| format!("{x:.1}"));
    r.blank();

    r.title("Divergent branches (from the PC-level profiler):");
    r.title(&row(
        "bench",
        &["pc", "execs", "diverged", "div-share%", "instr"].map(String::from),
    ));
    branch_rows.sort_by(|a, b| {
        b.4.partial_cmp(&a.4)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
            .then(a.1.cmp(&b.1))
    });
    for (abbr, pc, execs, diverged, share, disasm) in &branch_rows {
        r.row_text(
            abbr,
            &[
                format!("{pc}"),
                format!("{execs}"),
                format!("{diverged}"),
                format!("{share:.1}"),
                format!("  {disasm}"),
            ],
        );
    }
    r.blank();
    r.note("paper: avg 28% divergent; 45% of divergent instructions are");
    r.note("divergent-scalar (i.e. ~12.6% of total).");
    r.note(&format!(
        "measured: {:.1}% divergent; {:.0}% of divergent are divergent-scalar.",
        mean(&divs),
        100.0 * mean(&dscals) / mean(&divs).max(1e-9)
    ));
    r.finish();
}
