//! Table 2: the benchmark suite.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("tab02_benchmarks")
}
