//! Table 2: the benchmark suite.

use gscalar_bench::Report;
use gscalar_workloads::{suite, Scale};

fn main() {
    let mut r = Report::new("tab02_benchmarks");
    r.title("Table 2: benchmarks (synthetic reproductions; see DESIGN.md)");
    println!(
        "{:<12} {:<6} {:>8} {:>8} {:>8}",
        "benchmark", "abbr", "ctas", "block", "instrs"
    );
    for w in suite(Scale::Full) {
        println!(
            "{:<12} {:<6} {:>8} {:>8} {:>8}",
            w.name,
            w.abbr,
            w.launch.grid.count(),
            w.launch.block.count(),
            w.kernel.len()
        );
        r.metric(&format!("{}/ctas", w.abbr), w.launch.grid.count() as f64);
        r.metric(&format!("{}/block", w.abbr), w.launch.block.count() as f64);
        r.metric(&format!("{}/instrs", w.abbr), w.kernel.len() as f64);
    }
    r.finish();
}
