//! Table 2: the benchmark suite.

use gscalar_workloads::{suite, Scale};

fn main() {
    println!("Table 2: benchmarks (synthetic reproductions; see DESIGN.md)");
    println!(
        "{:<12} {:<6} {:>8} {:>8} {:>8}",
        "benchmark", "abbr", "ctas", "block", "instrs"
    );
    for w in suite(Scale::Full) {
        println!(
            "{:<12} {:<6} {:>8} {:>8} {:>8}",
            w.name,
            w.abbr,
            w.launch.grid.count(),
            w.launch.block.count(),
            w.kernel.len()
        );
    }
}
