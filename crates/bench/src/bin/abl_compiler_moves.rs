//! Extension study: compiler-assisted decompress-move elision
//! (Section 3.3).
//!
//! The hardware-only scheme inserts a register-to-register move before
//! every divergent partial write to a compressed register (~2% dynamic
//! instructions per prior work). The paper notes a compiler can prove
//! many destinations dead and skip the move; this study measures how
//! many moves our liveness analysis elides.

use gscalar_bench::Report;
use gscalar_core::Arch;
use gscalar_sim::{Gpu, GpuConfig};
use gscalar_workloads::{suite, Scale};

fn main() {
    let mut r = Report::new("abl_compiler_moves");
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Extension: decompress-move elision via liveness analysis");
    r.table(&["hw-moves", "cc-moves", "elided", "hw-ovh%", "cc-ovh%"]);
    let mut total_hw = 0u64;
    let mut total_cc = 0u64;
    for w in suite(Scale::Full) {
        let run = |compiler: bool| {
            let mut arch = Arch::GScalar.config();
            arch.compiler_assisted_moves = compiler;
            let mut gpu = Gpu::new(cfg.clone(), arch);
            let mut mem = w.memory.clone();
            gpu.run(&w.kernel, w.launch, &mut mem)
        };
        let hw = run(false);
        let cc = run(true);
        total_hw += hw.instr.decompress_moves;
        total_cc += cc.instr.decompress_moves;
        r.add_cycles(hw.cycles + cc.cycles);
        let hw_ovh = 100.0 * hw.instr.decompress_moves as f64 / hw.instr.warp_instrs as f64;
        let cc_ovh = 100.0 * cc.instr.decompress_moves as f64 / cc.instr.warp_instrs as f64;
        let vals = [
            hw.instr.decompress_moves as f64,
            cc.instr.decompress_moves as f64,
            cc.instr.decompress_moves_elided as f64,
            hw_ovh,
            cc_ovh,
        ];
        r.row(&w.abbr, &vals, |x| {
            if x.fract() == 0.0 && x.abs() < 1e9 {
                format!("{x:.0}")
            } else {
                format!("{x:.2}")
            }
        });
    }
    let removed = 100.0 * (1.0 - total_cc as f64 / total_hw.max(1) as f64);
    r.blank();
    r.note(&format!(
        "suite total: {total_hw} moves hardware-only → {total_cc} with liveness elision ({removed:.0}% removed)"
    ));
    r.metric("total/hw_moves", total_hw as f64);
    r.metric("total/cc_moves", total_cc as f64);
    r.metric("total/removed_pct", removed);
    r.note("paper: hardware-only costs ~2% dynamic instructions; compile-time");
    r.note("lifetime analysis \"may further reduce the overhead\" (Section 3.3).");
    r.finish();
}
