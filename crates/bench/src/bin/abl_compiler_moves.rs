//! Extension study: compiler-assisted decompress-move elision
//! (Section 3.3).
//!
//! The hardware-only scheme inserts a register-to-register move before
//! every divergent partial write to a compressed register (~2% dynamic
//! instructions per prior work). The paper notes a compiler can prove
//! many destinations dead and skip the move; this study measures how
//! many moves our liveness analysis elides.

use gscalar_bench::row;
use gscalar_core::Arch;
use gscalar_sim::{Gpu, GpuConfig};
use gscalar_workloads::{suite, Scale};

fn main() {
    println!("Extension: decompress-move elision via liveness analysis");
    println!(
        "{}",
        row(
            "bench",
            &[
                "hw-moves".into(),
                "cc-moves".into(),
                "elided".into(),
                "hw-ovh%".into(),
                "cc-ovh%".into()
            ]
        )
    );
    let cfg = GpuConfig::gtx480();
    let mut total_hw = 0u64;
    let mut total_cc = 0u64;
    for w in suite(Scale::Full) {
        let run = |compiler: bool| {
            let mut arch = Arch::GScalar.config();
            arch.compiler_assisted_moves = compiler;
            let mut gpu = Gpu::new(cfg.clone(), arch);
            let mut mem = w.memory.clone();
            gpu.run(&w.kernel, w.launch, &mut mem)
        };
        let hw = run(false);
        let cc = run(true);
        total_hw += hw.instr.decompress_moves;
        total_cc += cc.instr.decompress_moves;
        println!(
            "{}",
            row(
                &w.abbr,
                &[
                    format!("{}", hw.instr.decompress_moves),
                    format!("{}", cc.instr.decompress_moves),
                    format!("{}", cc.instr.decompress_moves_elided),
                    format!(
                        "{:.2}",
                        100.0 * hw.instr.decompress_moves as f64 / hw.instr.warp_instrs as f64
                    ),
                    format!(
                        "{:.2}",
                        100.0 * cc.instr.decompress_moves as f64 / cc.instr.warp_instrs as f64
                    ),
                ]
            )
        );
    }
    println!();
    println!(
        "suite total: {} moves hardware-only → {} with liveness elision ({:.0}% removed)",
        total_hw,
        total_cc,
        100.0 * (1.0 - total_cc as f64 / total_hw.max(1) as f64)
    );
    println!("paper: hardware-only costs ~2% dynamic instructions; compile-time");
    println!("lifetime analysis \"may further reduce the overhead\" (Section 3.3).");
}
