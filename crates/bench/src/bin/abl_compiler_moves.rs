//! Extension study: compiler-assisted decompress-move elision
//! (Section 3.3).
//!
//! The hardware-only scheme inserts a register-to-register move before
//! every divergent partial write to a compressed register (~2% dynamic
//! instructions per prior work). The paper notes a compiler can prove
//! many destinations dead and skip the move; this study measures how
//! many moves our liveness analysis elides.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("abl_compiler_moves")
}
