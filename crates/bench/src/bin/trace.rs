//! Cycle-level trace capture: runs a kernel with tracing enabled and
//! writes every exporter's output plus a stall-breakdown report.
//!
//! ```sh
//! # Trace the built-in divergent example kernel (Figure 7b shape):
//! cargo run --release --bin trace
//!
//! # Trace a suite workload by paper abbreviation:
//! cargo run --release --bin trace -- BP
//!
//! # Also write a run manifest (records `trace/dropped_events`):
//! cargo run --release --bin trace -- BP --json results/trace.json
//! ```
//!
//! Outputs (in the current directory, prefix `trace_<name>`):
//!
//! - `*.json` — Chrome trace-event JSON; open in Perfetto or
//!   `chrome://tracing`. One process per SM, one track per warp
//!   (execution spans), per scheduler (issue/stall instants), plus a
//!   memory-transaction track and counter tracks for interval metrics.
//! - `*.csv` — per-SM interval time series (IPC, scalar rate,
//!   compression ratio, RF activations).
//! - `*_waterfall.txt` — per-warp issue waterfall.
//!
//! The stall report printed at the end checks the taxonomy invariant:
//! the per-reason counts must sum exactly to `scheduler_idle_cycles`.
//!
//! When the event ring overflows (capacity-bounded; oldest records are
//! evicted) the drop count lands in the manifest as
//! `trace/dropped_events` and a warning goes to stderr — `report
//! aggregate` surfaces the same warning over a whole results set.

use std::env;
use std::fs;
use std::process::ExitCode;

use gscalar_bench::{experiments::CliOptions, Report};
use gscalar_core::{Arch, Runner};
use gscalar_sim::GpuConfig;
use gscalar_trace::export::{
    chrome_json, csv_timeseries, mem_level_counts, stall_report, waterfall,
};
use gscalar_trace::{EventBuf, Tracer};
use gscalar_workloads::{by_abbr, divergent_example, Scale};

/// Event-buffer capacity: large enough to hold every event of the
/// default kernel; suite workloads keep the most recent window.
const CAPACITY: usize = 1 << 20;

/// Interval-metric snapshot period in cycles.
const SNAPSHOT_INTERVAL: u64 = 64;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let opts = CliOptions::parse(args.iter().cloned());
    let abbr = args.iter().find(|a| !a.starts_with("--")).cloned();
    let workload = match abbr.as_deref() {
        None | Some("DIV") => divergent_example(),
        // Tracing always uses test scale: the ring holds a bounded
        // window and full-scale traces would mostly be dropped anyway.
        Some(abbr) => match by_abbr(abbr, Scale::Test) {
            Some(w) => w,
            None => {
                eprintln!("unknown benchmark abbreviation: {abbr} (try BP, LBM, MM, ... or DIV)");
                return ExitCode::FAILURE;
            }
        },
    };

    let runner = Runner::new(GpuConfig::test_small());
    let mut buf = EventBuf::new(CAPACITY);
    let mut tracer = Tracer::new(&mut buf);
    let report = runner.run_traced(&workload, Arch::GScalar, &mut tracer, SNAPSHOT_INTERVAL);
    let stats = &report.stats;

    // The drop count must be read before the ring is consumed; it is
    // the only signal that the exports below are missing records.
    let dropped = buf.dropped();
    let records = buf.into_records();
    let prefix = format!("trace_{}", workload.name);
    let json_path = format!("{prefix}.json");
    let csv_path = format!("{prefix}.csv");
    let wf_path = format!("{prefix}_waterfall.txt");
    fs::write(&json_path, chrome_json(&records)).expect("write chrome trace");
    fs::write(&csv_path, csv_timeseries(&records)).expect("write csv");
    fs::write(&wf_path, waterfall(&records)).expect("write waterfall");

    println!(
        "workload {:<12} arch {:<10} cycles {:>8}  warp instrs {:>8}  events {}",
        workload.name,
        report.arch.label(),
        stats.cycles,
        stats.instr.warp_instrs,
        records.len(),
    );
    println!("wrote {json_path}, {csv_path}, {wf_path}\n");

    println!("memory transactions by level:");
    for (level, n) in mem_level_counts(&records) {
        println!("    {:<12} {n:>8}", level.label());
    }
    println!();

    let rep = stall_report(
        &stats.pipe.stalls,
        stats.pipe.scheduler_idle_cycles,
        stats.pipe.issued,
    );
    println!("{rep}");

    if dropped > 0 {
        eprintln!(
            "trace: ring dropped {dropped} event(s); exported traces are \
             truncated (oldest records evicted; capacity {CAPACITY})"
        );
    }
    let mut manifest = Report::from_options("trace", &opts);
    manifest.record_run(&workload.abbr, &report);
    manifest.metric("trace/dropped_events", dropped as f64);
    manifest.metric("trace/events", records.len() as f64);
    manifest.finish();

    if stats.pipe.stalls.total() == stats.pipe.scheduler_idle_cycles {
        ExitCode::SUCCESS
    } else {
        eprintln!("stall taxonomy invariant violated");
        ExitCode::FAILURE
    }
}
