//! Quick calibration probe: per-benchmark characteristics vs paper targets.
//!
//! Supports `--scale test` for a fast CI smoke run, `--threads N` for
//! parallel execution, and `--json [path]` for the machine-readable
//! manifest (full per-run detail, `record_run`-compatible keys).

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("probe")
}
