//! Quick calibration probe: per-benchmark characteristics vs paper targets.
//!
//! Supports `--scale test` for a fast CI smoke run and `--json [path]`
//! for the machine-readable manifest (full per-run detail via
//! [`Report::record_run`]).

use gscalar_bench::{parse_scale, Report};
use gscalar_core::{Arch, Runner};
use gscalar_sim::GpuConfig;
use gscalar_workloads::suite;
use std::time::Instant;

fn main() {
    let scale = parse_scale();
    let mut rep = Report::new("probe");
    let cfg = GpuConfig::gtx480();
    rep.config(&cfg);
    let runner = Runner::new(cfg);
    println!(
        "{:<6} {:>9} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>6}",
        "bench",
        "winstr",
        "div%",
        "dscal%",
        "alu%",
        "sfu%",
        "mem%",
        "half%",
        "tot%",
        "cycles",
        "t(s)"
    );
    for w in suite(scale) {
        let t0 = Instant::now();
        let r = runner.run(&w, Arch::Baseline);
        let s = &r.stats;
        let wi = s.instr.warp_instrs as f64;
        println!("{:<6} {:>9} {:>6.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>8} {:>6.2}",
            w.abbr, s.instr.warp_instrs,
            100.0*s.instr.divergent_instrs as f64/wi,
            100.0*s.instr.eligible_divergent as f64/wi,
            100.0*s.instr.eligible_alu as f64/wi,
            100.0*s.instr.eligible_sfu as f64/wi,
            100.0*s.instr.eligible_mem as f64/wi,
            100.0*s.instr.eligible_half as f64/wi,
            100.0*s.instr.eligible_total() as f64/wi,
            s.cycles, t0.elapsed().as_secs_f64());
        rep.record_run(&w.abbr, &r);
    }
    rep.finish();
}
