//! Quick calibration probe: per-benchmark characteristics vs paper targets.

use gscalar_core::{Arch, Runner};
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};
use std::time::Instant;

fn main() {
    let runner = Runner::new(GpuConfig::gtx480());
    println!(
        "{:<6} {:>9} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>6}",
        "bench",
        "winstr",
        "div%",
        "dscal%",
        "alu%",
        "sfu%",
        "mem%",
        "half%",
        "tot%",
        "cycles",
        "t(s)"
    );
    for w in suite(Scale::Full) {
        let t0 = Instant::now();
        let r = runner.run(&w, Arch::Baseline);
        let s = &r.stats;
        let wi = s.instr.warp_instrs as f64;
        println!("{:<6} {:>9} {:>6.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>8} {:>6.2}",
            w.abbr, s.instr.warp_instrs,
            100.0*s.instr.divergent_instrs as f64/wi,
            100.0*s.instr.eligible_divergent as f64/wi,
            100.0*s.instr.eligible_alu as f64/wi,
            100.0*s.instr.eligible_sfu as f64/wi,
            100.0*s.instr.eligible_mem as f64/wi,
            100.0*s.instr.eligible_half as f64/wi,
            100.0*s.instr.eligible_total() as f64/wi,
            s.cycles, t0.elapsed().as_secs_f64());
    }
}
