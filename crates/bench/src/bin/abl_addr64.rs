//! Extension study: 64-bit address computation (Section 5.3 prose).
//!
//! "If the addresses are 64-bit, we can have more bytes with the same
//! value and thus more power reduction." This study compares the
//! uniform-byte-prefix fraction of coalesced warp address streams when
//! computed at 32-bit vs 64-bit width.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("abl_addr64")
}
