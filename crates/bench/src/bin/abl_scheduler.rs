//! Ablation: warp scheduler policy (GTO vs loose round-robin).
//!
//! Section 4.1's burst-of-scalar-instructions observation assumes warps
//! run at roughly the same pace; LRR strengthens that effect, GTO
//! weakens it. This ablation measures both baseline performance and the
//! scalar-bank serialization pressure of the prior-work design.

use gscalar_bench::row;
use gscalar_core::Arch;
use gscalar_sim::scheduler::SchedPolicy;
use gscalar_sim::{Gpu, GpuConfig};
use gscalar_workloads::{suite, Scale};

fn main() {
    println!("Ablation: GTO vs LRR (ALU-scalar architecture)");
    println!(
        "{}",
        row(
            "bench",
            &[
                "gto-IPC".into(),
                "lrr-IPC".into(),
                "gto-ser".into(),
                "lrr-ser".into()
            ]
        )
    );
    for w in suite(Scale::Full) {
        let run = |policy: SchedPolicy| {
            let mut cfg = GpuConfig::gtx480();
            cfg.sched = policy;
            let mut gpu = Gpu::new(cfg, Arch::AluScalar.config());
            let mut mem = w.memory.clone();
            gpu.run(&w.kernel, w.launch, &mut mem)
        };
        let gto = run(SchedPolicy::Gto);
        let lrr = run(SchedPolicy::Lrr);
        println!(
            "{}",
            row(
                &w.abbr,
                &[
                    format!("{:.1}", gto.ipc()),
                    format!("{:.1}", lrr.ipc()),
                    format!("{}", gto.pipe.scalar_bank_serializations),
                    format!("{}", lrr.pipe.scalar_bank_serializations),
                ]
            )
        );
    }
    println!();
    println!("the single scalar bank serializes under both policies; warps running");
    println!("in lockstep (LRR) tend to burst scalar reads harder (Section 4.1).");
}
