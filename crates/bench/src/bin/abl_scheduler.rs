//! Ablation: warp scheduler policy (GTO vs loose round-robin).
//!
//! Section 4.1's burst-of-scalar-instructions observation assumes warps
//! run at roughly the same pace; LRR strengthens that effect, GTO
//! weakens it. This ablation measures both baseline performance and the
//! scalar-bank serialization pressure of the prior-work design.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("abl_scheduler")
}
