//! Ablation: warp scheduler policy (GTO vs loose round-robin).
//!
//! Section 4.1's burst-of-scalar-instructions observation assumes warps
//! run at roughly the same pace; LRR strengthens that effect, GTO
//! weakens it. This ablation measures both baseline performance and the
//! scalar-bank serialization pressure of the prior-work design.

use gscalar_bench::Report;
use gscalar_core::Arch;
use gscalar_sim::scheduler::SchedPolicy;
use gscalar_sim::{Gpu, GpuConfig};
use gscalar_workloads::{suite, Scale};

fn main() {
    let mut r = Report::new("abl_scheduler");
    r.config(&GpuConfig::gtx480());
    r.title("Ablation: GTO vs LRR (ALU-scalar architecture)");
    r.table(&["gto-IPC", "lrr-IPC", "gto-ser", "lrr-ser"]);
    for w in suite(Scale::Full) {
        let run = |policy: SchedPolicy| {
            let mut cfg = GpuConfig::gtx480();
            cfg.sched = policy;
            let mut gpu = Gpu::new(cfg, Arch::AluScalar.config());
            let mut mem = w.memory.clone();
            gpu.run(&w.kernel, w.launch, &mut mem)
        };
        let gto = run(SchedPolicy::Gto);
        let lrr = run(SchedPolicy::Lrr);
        r.add_cycles(gto.cycles + lrr.cycles);
        let vals = [
            gto.ipc(),
            lrr.ipc(),
            gto.pipe.scalar_bank_serializations as f64,
            lrr.pipe.scalar_bank_serializations as f64,
        ];
        r.row(&w.abbr, &vals, |x| {
            if x.fract() == 0.0 && x.abs() < 1e9 {
                format!("{x:.0}")
            } else {
                format!("{x:.1}")
            }
        });
    }
    r.blank();
    r.note("the single scalar bank serializes under both policies; warps running");
    r.note("in lockstep (LRR) tend to burst scalar reads harder (Section 4.1).");
    r.finish();
}
