//! Figure 11: normalized GPU power efficiency (IPC/W) and the IPC
//! impact of the +3-cycle compression latency.

use gscalar_bench::{mean, row};
use gscalar_core::Arch;
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};

fn main() {
    println!("Figure 11: normalized IPC/W (baseline = 1.0) and G-Scalar IPC");
    let head: Vec<String> = ["ALUscal", "GS-w/o-div", "G-Scalar", "GS(IPC)"]
        .iter()
        .map(|s| (*s).into())
        .collect();
    println!("{}", row("bench", &head));
    let cfg = GpuConfig::gtx480();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for w in suite(Scale::Full) {
        let reports = gscalar_bench::run_workload_all_archs(&w, &cfg);
        let base = &reports[0];
        let base_eff = base.ipc_per_watt();
        let base_ipc = base.stats.ipc();
        let get = |a: Arch| {
            reports
                .iter()
                .find(|r| r.arch == a)
                .expect("arch simulated")
        };
        let alu = get(Arch::AluScalar).ipc_per_watt() / base_eff;
        let nod = get(Arch::GScalarNoDivergent).ipc_per_watt() / base_eff;
        let gs = get(Arch::GScalar).ipc_per_watt() / base_eff;
        let gsipc = get(Arch::GScalar).stats.ipc() / base_ipc;
        for (c, v) in cols.iter_mut().zip([alu, nod, gs, gsipc]) {
            c.push(v);
        }
        let cells: Vec<String> = [alu, nod, gs, gsipc]
            .iter()
            .map(|x| format!("{x:.3}"))
            .collect();
        println!("{}", row(&w.abbr, &cells));
    }
    let avg: Vec<String> = cols.iter().map(|c| format!("{:.3}", mean(c))).collect();
    println!("{}", row("AVG", &avg));
    println!();
    println!("paper: G-Scalar +24% IPC/W vs baseline and +15% vs ALU-scalar;");
    println!("mean IPC degradation 1.7% (LC worst); BP gains 79%.");
    let gs_avg = mean(&cols[2]);
    let alu_avg = mean(&cols[0]);
    println!(
        "measured: G-Scalar {:+.1}% vs baseline, {:+.1}% vs ALU-scalar; IPC {:+.1}%.",
        100.0 * (gs_avg - 1.0),
        100.0 * (gs_avg / alu_avg - 1.0),
        100.0 * (mean(&cols[3]) - 1.0)
    );
}
