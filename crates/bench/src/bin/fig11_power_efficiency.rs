//! Figure 11: normalized GPU power efficiency (IPC/W) and the IPC
//! impact of the +3-cycle compression latency.

use gscalar_bench::{mean, Report};
use gscalar_core::Arch;
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};

fn main() {
    let mut r = Report::new("fig11_power_efficiency");
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Figure 11: normalized IPC/W (baseline = 1.0) and G-Scalar IPC");
    r.table(&["ALUscal", "GS-w/o-div", "G-Scalar", "GS(IPC)"]);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for w in suite(Scale::Full) {
        let reports = gscalar_bench::run_workload_all_archs(&w, &cfg);
        let base = &reports[0];
        let base_eff = base.ipc_per_watt();
        let base_ipc = base.stats.ipc();
        let get = |a: Arch| {
            reports
                .iter()
                .find(|x| x.arch == a)
                .expect("arch simulated")
        };
        let alu = get(Arch::AluScalar).ipc_per_watt() / base_eff;
        let nod = get(Arch::GScalarNoDivergent).ipc_per_watt() / base_eff;
        let gs = get(Arch::GScalar).ipc_per_watt() / base_eff;
        let gsipc = get(Arch::GScalar).stats.ipc() / base_ipc;
        for (c, v) in cols.iter_mut().zip([alu, nod, gs, gsipc]) {
            c.push(v);
        }
        for report in &reports {
            r.add_cycles(report.stats.cycles);
        }
        r.row(&w.abbr, &[alu, nod, gs, gsipc], |x| format!("{x:.3}"));
    }
    let avg: Vec<f64> = cols.iter().map(|c| mean(c)).collect();
    r.row("AVG", &avg, |x| format!("{x:.3}"));
    r.blank();
    r.note("paper: G-Scalar +24% IPC/W vs baseline and +15% vs ALU-scalar;");
    r.note("mean IPC degradation 1.7% (LC worst); BP gains 79%.");
    let gs_avg = avg[2];
    let alu_avg = avg[0];
    r.note(&format!(
        "measured: G-Scalar {:+.1}% vs baseline, {:+.1}% vs ALU-scalar; IPC {:+.1}%.",
        100.0 * (gs_avg - 1.0),
        100.0 * (gs_avg / alu_avg - 1.0),
        100.0 * (avg[3] - 1.0)
    ));
    r.finish();
}
