//! Figure 11: normalized GPU power efficiency (IPC/W) and the IPC
//! impact of the +3-cycle compression latency.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("fig11_power_efficiency")
}
