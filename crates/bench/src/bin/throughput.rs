//! Host-throughput benchmark: how many simulated cycles per host
//! second does the simulator sustain, and where does the host time go?
//!
//! Runs a pinned workload mix — the 17 Table 2 kernels, each weighted
//! by its own simulated cycle count — twice: once on the serial engine
//! and once on the parallel epoch engine (minimum 2 executor threads,
//! so barrier-wait and work-stealing telemetry engage). Host-side
//! profiling ([`gscalar_hostprof`]) is always on here; the report is
//! the per-phase exclusive wall-time breakdown plus per-phase
//! `cycles_per_host_s`.
//!
//! ```sh
//! cargo run --release --bin throughput -- --scale test --json BENCH_throughput.json
//! ```
//!
//! Every metric in the manifest lives under `host/`, so `report
//! compare` treats the whole file as informational: the committed
//! `BENCH_throughput.json` is a trend record, never a hard gate —
//! wall-clock jitter cannot fail CI.
//!
//! With `--json <path>`, a Chrome trace-event host timeline is also
//! written next to the manifest as `<stem>.timeline.json` (open in
//! `chrome://tracing` or Perfetto).

use std::process::ExitCode;
use std::time::Instant;

use gscalar_bench::{experiments::CliOptions, Report};
use gscalar_core::{Arch, Runner, Workload};
use gscalar_hostprof as hostprof;
use gscalar_sim::GpuConfig;
use gscalar_workloads::suite;

/// One engine pass over the whole mix: runs every workload, records
/// per-workload and aggregate throughput under `host/<tag>/...`, and
/// returns `(total_cycles, wall_seconds)`.
fn run_mix(
    r: &mut Report,
    workloads: &[Workload],
    base: &GpuConfig,
    threads: usize,
    tag: &str,
) -> (u64, f64) {
    let mut cfg = base.clone();
    cfg.exec_threads = threads;
    let runner = Runner::new(cfg);
    let mut total_cycles = 0u64;
    let t0 = Instant::now();
    for w in workloads {
        // Harness catches everything the per-cycle probes inside the
        // simulator do not claim (setup, memory clone, stats merge).
        let _h = hostprof::phase(hostprof::Phase::Harness);
        let _t = hostprof::timeline_scope(&format!("{tag}:{}", w.abbr));
        let wt0 = Instant::now();
        let rep = runner.run(w, Arch::GScalar);
        let ws = wt0.elapsed().as_secs_f64();
        total_cycles += rep.stats.cycles;
        let cps = if ws > 0.0 {
            rep.stats.cycles as f64 / ws
        } else {
            0.0
        };
        r.metric(
            &format!("host/{tag}/{}/cycles", w.abbr),
            rep.stats.cycles as f64,
        );
        r.metric(&format!("host/{tag}/{}/wall_s", w.abbr), ws);
        r.metric(&format!("host/{tag}/{}/cycles_per_host_s", w.abbr), cps);
    }
    let wall = t0.elapsed().as_secs_f64();
    r.add_cycles(total_cycles);
    r.metric(&format!("host/{tag}/total_cycles"), total_cycles as f64);
    r.metric(&format!("host/{tag}/wall_s"), wall);
    r.metric(
        &format!("host/{tag}/cycles_per_host_s"),
        if wall > 0.0 {
            total_cycles as f64 / wall
        } else {
            0.0
        },
    );
    (total_cycles, wall)
}

/// Resolves the `--json [path]` argument the way [`Report::from_args`]
/// does, so the timeline file can land next to the manifest.
fn json_path_from_args(args: &[String]) -> Option<std::path::PathBuf> {
    let mut it = args.iter().peekable();
    let mut path = None;
    while let Some(a) = it.next() {
        if a == "--json" {
            path = Some(match it.peek() {
                Some(p) if !p.starts_with("--") => std::path::PathBuf::from(it.next().unwrap()),
                _ => std::path::PathBuf::from("results/throughput.json"),
            });
        }
    }
    path
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = CliOptions::parse(args.iter().cloned());
    let mut r = Report::new("throughput");
    hostprof::reset();
    hostprof::set_enabled(true);

    let cfg = GpuConfig::gtx480();
    let workloads = suite(opts.scale);
    r.title("host throughput: 17-kernel mix, cycle-weighted");
    r.config(&cfg);

    // Pass 1: serial engine. Snapshot right after, while every phase
    // ran on this one thread, to check instrumentation coverage: the
    // exclusive phase totals must sum (within slop) to the pass's wall
    // time.
    let (serial_cycles, serial_wall) = run_mix(&mut r, &workloads, &cfg, 1, "serial");
    let serial_snap = hostprof::snapshot();
    let coverage = if serial_wall > 0.0 {
        serial_snap.total_ns() as f64 / (serial_wall * 1e9)
    } else {
        0.0
    };
    r.metric("host/serial/instrumented_fraction", coverage);

    // Pass 2: parallel epoch engine — exercises barrier-wait and
    // work-stealing telemetry. Accumulates on top of pass 1 (worker
    // self-time overlaps the coordinator, so phase totals now read as
    // CPU time, not wall time).
    let threads = opts.sim_threads.max(2);
    let (_par_cycles, par_wall) = run_mix(&mut r, &workloads, &cfg, threads, "parallel");

    let snap = hostprof::snapshot();
    let total_cycles = serial_cycles; // weight basis: one serial mix
    for (i, p) in hostprof::Phase::ALL.iter().enumerate() {
        let ns = snap.phases[i].ns;
        if ns > 0 {
            r.metric(
                &format!("host/phase/{}/cycles_per_host_s", p.name()),
                total_cycles as f64 / (ns as f64 / 1e9),
            );
        }
    }

    r.blank();
    r.note(&snap.render(serial_wall + par_wall));
    r.note(&format!(
        "serial pass: {serial_cycles} cycles in {serial_wall:.3}s \
         ({:.0} cycles/host-s), instrumented coverage {:.1}%",
        if serial_wall > 0.0 {
            serial_cycles as f64 / serial_wall
        } else {
            0.0
        },
        100.0 * coverage
    ));
    r.note(&format!(
        "parallel pass ({threads} sim threads): {par_wall:.3}s wall"
    ));
    if !(0.5..=1.5).contains(&coverage) {
        r.note(&format!(
            "WARNING: instrumented phases cover {:.1}% of serial wall \
             time — expected ~100%",
            100.0 * coverage
        ));
    }

    if let Some(json) = json_path_from_args(&args) {
        let tl_path = json.with_extension("timeline.json");
        if let Some(dir) = tl_path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).ok();
            }
        }
        match std::fs::write(&tl_path, hostprof::chrome_timeline_json()) {
            Ok(()) => eprintln!("wrote {}", tl_path.display()),
            Err(e) => {
                eprintln!("writing {}: {e}", tl_path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    // finish() exports the hostprof flatten (host/phase/*, host/pool/*)
    // into the manifest while profiling is still enabled.
    r.finish();
    hostprof::set_enabled(false);
    ExitCode::SUCCESS
}
