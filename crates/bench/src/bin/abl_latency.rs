//! Ablation: sensitivity to the compression pipeline depth.
//!
//! The paper adds 3 cycles (compress, decompress, EBR/BVR read) and
//! reports a 1.7% mean IPC loss (Section 5.4). This sweep varies the
//! added depth to show how much headroom the latency-hiding gives.

use gscalar_bench::{mean, Report};
use gscalar_core::Arch;
use gscalar_sim::{Gpu, GpuConfig};
use gscalar_workloads::{suite, Scale};

fn main() {
    let mut r = Report::new("abl_latency");
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Ablation: IPC vs extra pipeline latency (normalized to +0)");
    let depths = [0u64, 1, 3, 6, 12];
    let head: Vec<String> = depths.iter().map(|d| format!("+{d}cyc")).collect();
    let head_refs: Vec<&str> = head.iter().map(String::as_str).collect();
    r.table(&head_refs);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); depths.len()];
    for w in suite(Scale::Full) {
        let mut cycles = 0u64;
        let mut ipc_at = |d: u64| {
            let mut arch = Arch::GScalar.config();
            arch.extra_latency = d;
            let mut gpu = Gpu::new(cfg.clone(), arch);
            let mut mem = w.memory.clone();
            let s = gpu.run(&w.kernel, w.launch, &mut mem);
            cycles += s.cycles;
            s.ipc()
        };
        let base = ipc_at(0);
        let vals: Vec<f64> = depths.iter().map(|&d| ipc_at(d) / base).collect();
        for (c, v) in cols.iter_mut().zip(&vals) {
            c.push(*v);
        }
        r.add_cycles(cycles);
        r.row(&w.abbr, &vals, |x| format!("{x:.3}"));
    }
    let avg: Vec<f64> = cols.iter().map(|c| mean(c)).collect();
    r.row("AVG", &avg, |x| format!("{x:.3}"));
    r.blank();
    r.note("paper: +3 cycles costs 1.7% IPC on average (Section 5.4).");
    r.finish();
}
