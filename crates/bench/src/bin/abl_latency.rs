//! Ablation: sensitivity to the compression pipeline depth.
//!
//! The paper adds 3 cycles (compress, decompress, EBR/BVR read) and
//! reports a 1.7% mean IPC loss (Section 5.4). This sweep varies the
//! added depth to show how much headroom the latency-hiding gives.

use gscalar_bench::{mean, row};
use gscalar_core::Arch;
use gscalar_sim::{Gpu, GpuConfig};
use gscalar_workloads::{suite, Scale};

fn main() {
    println!("Ablation: IPC vs extra pipeline latency (normalized to +0)");
    let depths = [0u64, 1, 3, 6, 12];
    let head: Vec<String> = depths.iter().map(|d| format!("+{d}cyc")).collect();
    println!("{}", row("bench", &head));
    let cfg = GpuConfig::gtx480();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); depths.len()];
    for w in suite(Scale::Full) {
        let ipc_at = |d: u64| {
            let mut arch = Arch::GScalar.config();
            arch.extra_latency = d;
            let mut gpu = Gpu::new(cfg.clone(), arch);
            let mut mem = w.memory.clone();
            gpu.run(&w.kernel, w.launch, &mut mem).ipc()
        };
        let base = ipc_at(0);
        let vals: Vec<f64> = depths.iter().map(|&d| ipc_at(d) / base).collect();
        for (c, v) in cols.iter_mut().zip(&vals) {
            c.push(*v);
        }
        let cells: Vec<String> = vals.iter().map(|v| format!("{v:.3}")).collect();
        println!("{}", row(&w.abbr, &cells));
    }
    let avg: Vec<String> = cols.iter().map(|c| format!("{:.3}", mean(c))).collect();
    println!("{}", row("AVG", &avg));
    println!();
    println!("paper: +3 cycles costs 1.7% IPC on average (Section 5.4).");
}
