//! Ablation: sensitivity to the compression pipeline depth.
//!
//! The paper adds 3 cycles (compress, decompress, EBR/BVR read) and
//! reports a 1.7% mean IPC loss (Section 5.4). This sweep varies the
//! added depth to show how much headroom the latency-hiding gives.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("abl_latency")
}
