//! Table 1: simulator configuration.

use gscalar_bench::Report;
use gscalar_sim::GpuConfig;

fn main() {
    let mut r = Report::new("tab01_config");
    let c = GpuConfig::gtx480();
    r.config(&c);
    r.title("Table 1: simulator configuration (GTX 480-like)");
    let rows: Vec<(&str, &str, String, f64)> = vec![
        (
            "# of SMs",
            "num_sms",
            format!("{}", c.num_sms),
            c.num_sms as f64,
        ),
        (
            "Registers per SM",
            "regs_kb",
            format!("{} KB", c.regs_per_sm * 4 / 1024),
            (c.regs_per_sm * 4 / 1024) as f64,
        ),
        (
            "SM frequency",
            "sm_ghz",
            format!("{:.1} GHz", c.sm_clock_hz / 1e9),
            c.sm_clock_hz / 1e9,
        ),
        (
            "Register file banks",
            "rf_banks",
            format!("{}", c.rf_banks),
            c.rf_banks as f64,
        ),
        (
            "NoC frequency",
            "noc_ghz",
            format!("{:.1} GHz", c.noc_clock_hz / 1e9),
            c.noc_clock_hz / 1e9,
        ),
        (
            "OC per SM",
            "operand_collectors",
            format!("{}", c.operand_collectors),
            c.operand_collectors as f64,
        ),
        (
            "Warp size",
            "warp_size",
            format!("{}", c.warp_size),
            c.warp_size as f64,
        ),
        (
            "Schedulers per SM",
            "schedulers",
            format!("{}", c.schedulers),
            c.schedulers as f64,
        ),
        (
            "SIMT exe width",
            "simt_width",
            format!("{}", c.simt_width),
            c.simt_width as f64,
        ),
        (
            "L1$ per SM",
            "l1_kb",
            format!("{} KB", c.l1_bytes / 1024),
            (c.l1_bytes / 1024) as f64,
        ),
        (
            "Threads per SM",
            "threads_per_sm",
            format!("{}", c.threads_per_sm),
            c.threads_per_sm as f64,
        ),
        (
            "Memory channels",
            "mem_channels",
            format!("{}", c.mem_channels),
            c.mem_channels as f64,
        ),
        (
            "CTAs per SM",
            "ctas_per_sm",
            format!("{}", c.ctas_per_sm),
            c.ctas_per_sm as f64,
        ),
        (
            "L2$ size",
            "l2_kb",
            format!("{} KB", c.l2_bytes / 1024),
            (c.l2_bytes / 1024) as f64,
        ),
    ];
    for (label, key, text, value) in rows {
        println!("  {label:<20} {text}");
        r.metric(&format!("config/{key}"), value);
    }
    r.finish();
}
