//! Table 1: simulator configuration.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("tab01_config")
}
