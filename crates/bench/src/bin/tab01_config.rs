//! Table 1: simulator configuration.

use gscalar_sim::GpuConfig;

fn main() {
    let c = GpuConfig::gtx480();
    println!("Table 1: simulator configuration (GTX 480-like)");
    println!("  # of SMs             {}", c.num_sms);
    println!("  Registers per SM     {} KB", c.regs_per_sm * 4 / 1024);
    println!("  SM frequency         {:.1} GHz", c.sm_clock_hz / 1e9);
    println!("  Register file banks  {}", c.rf_banks);
    println!("  NoC frequency        {:.1} GHz", c.noc_clock_hz / 1e9);
    println!("  OC per SM            {}", c.operand_collectors);
    println!("  Warp size            {}", c.warp_size);
    println!("  Schedulers per SM    {}", c.schedulers);
    println!("  SIMT exe width       {}", c.simt_width);
    println!("  L1$ per SM           {} KB", c.l1_bytes / 1024);
    println!("  Threads per SM       {}", c.threads_per_sm);
    println!("  Memory channels      {}", c.mem_channels);
    println!("  CTAs per SM          {}", c.ctas_per_sm);
    println!("  L2$ size             {} KB", c.l2_bytes / 1024);
}
