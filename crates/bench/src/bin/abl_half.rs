//! Ablation: half-warp scalar execution and half-register compression.
//!
//! Section 4.3 prices the second set of BVR/EBR registers at a register
//! file area increase from 3% to 7%. This ablation shows what the
//! feature buys: the efficiency delta of G-Scalar with and without
//! half-warp scalar execution.

use gscalar_bench::{mean, Report};
use gscalar_core::{Arch, Runner};
use gscalar_power::synthesis::rf_area_overhead_fraction;
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};

fn main() {
    let mut r = Report::new("abl_half");
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Ablation: half-warp scalar execution on/off (IPC/W, baseline = 1.0)");
    r.table(&["no-half", "with-half", "delta%"]);
    let runner = Runner::new(GpuConfig::gtx480());
    let mut deltas = Vec::new();
    for w in suite(Scale::Full) {
        let base = runner.run(&w, Arch::Baseline);
        let with = runner.run(&w, Arch::GScalar);
        let mut arch = Arch::GScalar.config();
        arch.scalar_half = false;
        arch.name = "G-Scalar w/o half".into();
        let mut gpu = gscalar_sim::Gpu::new(cfg.clone(), arch);
        let mut mem = w.memory.clone();
        let stats = gpu.run(&w.kernel, w.launch, &mut mem);
        let power = gscalar_power::chip_power(
            &stats,
            &cfg,
            gscalar_power::RfScheme::ByteWise,
            true,
            runner.energy(),
        );
        let b = base.power.ipc_per_watt();
        let no_half = power.ipc_per_watt() / b;
        let half = with.power.ipc_per_watt() / b;
        let d = 100.0 * (half / no_half - 1.0);
        deltas.push(d);
        r.add_cycles(base.stats.cycles + with.stats.cycles + stats.cycles);
        r.row(&w.abbr, &[no_half, half, d], |x| format!("{x:.3}"));
    }
    let avg = mean(&deltas);
    r.row_text("AVG", &["".into(), "".into(), format!("{avg:+.2}")]);
    r.metric("AVG/delta%", avg);
    r.blank();
    r.note(&format!(
        "cost: RF area overhead {:.0}% → {:.0}% (Section 4.3); the paper keeps",
        100.0 * rf_area_overhead_fraction(false),
        100.0 * rf_area_overhead_fraction(true)
    ));
    r.note("half-warp scalar optional and non-divergent-only.");
    r.finish();
}
