//! Ablation: half-warp scalar execution and half-register compression.
//!
//! Section 4.3 prices the second set of BVR/EBR registers at a register
//! file area increase from 3% to 7%. This ablation shows what the
//! feature buys: the efficiency delta of G-Scalar with and without
//! half-warp scalar execution.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("abl_half")
}
