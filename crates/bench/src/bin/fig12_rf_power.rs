//! Figure 12: normalized register-file dynamic power under the four
//! register-file designs, plus average compression ratios.

use gscalar_bench::{mean, row};
use gscalar_core::{Arch, Runner};
use gscalar_power::RfScheme;
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};

fn main() {
    println!("Figure 12: normalized RF dynamic power (baseline = 1.0)");
    let head: Vec<String> = ["scalar-only", "W-C", "ours", "ratio", "bdi-ratio"]
        .iter()
        .map(|s| (*s).into())
        .collect();
    println!("{}", row("bench", &head));
    let runner = Runner::new(GpuConfig::gtx480());
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for w in suite(Scale::Full) {
        let rows = runner.rf_power_normalized(&w);
        let get = |s: RfScheme| rows.iter().find(|(x, _)| *x == s).expect("scheme").1;
        let report = runner.run(&w, Arch::Baseline);
        let ours_ratio = report.stats.rf.ours_ratio();
        let bdi_ratio = report.stats.rf.bdi_ratio();
        let vals = [
            get(RfScheme::ScalarRf),
            get(RfScheme::WarpedCompression),
            get(RfScheme::ByteWise),
            ours_ratio,
            bdi_ratio,
        ];
        for (c, v) in cols.iter_mut().zip(vals) {
            c.push(v);
        }
        let cells: Vec<String> = vals.iter().map(|x| format!("{x:.3}")).collect();
        println!("{}", row(&w.abbr, &cells));
    }
    let avg: Vec<String> = cols.iter().map(|c| format!("{:.3}", mean(c))).collect();
    println!("{}", row("AVG", &avg));
    println!();
    println!("paper: scalar RF 63% of baseline, ours 46% (i.e. -54%); ours beats");
    println!("W-C slightly; compression ratio ours 2.17 vs BDI 2.13.");
}
