//! Figure 12: normalized register-file dynamic power under the four
//! register-file designs, plus average compression ratios.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("fig12_rf_power")
}
