//! Figure 12: normalized register-file dynamic power under the four
//! register-file designs, plus average compression ratios.

use gscalar_bench::{mean, Report};
use gscalar_core::{Arch, Runner};
use gscalar_power::RfScheme;
use gscalar_sim::GpuConfig;
use gscalar_workloads::{suite, Scale};

fn main() {
    let mut r = Report::new("fig12_rf_power");
    let cfg = GpuConfig::gtx480();
    r.config(&cfg);
    r.title("Figure 12: normalized RF dynamic power (baseline = 1.0)");
    r.table(&["scalar-only", "W-C", "ours", "ratio", "bdi-ratio"]);
    let runner = Runner::new(cfg);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for w in suite(Scale::Full) {
        let rows = runner.rf_power_normalized(&w);
        let get = |s: RfScheme| rows.iter().find(|(x, _)| *x == s).expect("scheme").1;
        let report = runner.run(&w, Arch::Baseline);
        let ours_ratio = report.stats.rf.ours_ratio();
        let bdi_ratio = report.stats.rf.bdi_ratio();
        let vals = [
            get(RfScheme::ScalarRf),
            get(RfScheme::WarpedCompression),
            get(RfScheme::ByteWise),
            ours_ratio,
            bdi_ratio,
        ];
        for (c, v) in cols.iter_mut().zip(vals) {
            c.push(v);
        }
        r.add_cycles(report.stats.cycles);
        r.row(&w.abbr, &vals, |x| format!("{x:.3}"));
    }
    let avg: Vec<f64> = cols.iter().map(|c| mean(c)).collect();
    r.row("AVG", &avg, |x| format!("{x:.3}"));
    r.blank();
    r.note("paper: scalar RF 63% of baseline, ours 46% (i.e. -54%); ours beats");
    r.note("W-C slightly; compression ratio ours 2.17 vs BDI 2.13.");
    r.finish();
}
