//! Cycle-accounting dashboard: per-benchmark CPI stacks, critical-path
//! attribution, and what-if projections validated by idealized re-runs.
//!
//! Supports `--scale test` for a fast CI smoke run, `--threads N` for
//! parallel execution, and `--json [path]` for the machine-readable
//! manifest. Exits nonzero when any CPI stack fails reconciliation.

use std::process::ExitCode;

fn main() -> ExitCode {
    gscalar_bench::experiments::main_single("bottleneck")
}
