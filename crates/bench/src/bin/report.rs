//! Run-report tooling: aggregate manifests into a dashboard, or compare
//! two manifest sets as a regression gate.
//!
//! ```text
//! report aggregate <dir|file> [--merge <out.json>]
//! report compare <baseline dir|file> <current dir|file>
//!        [--threshold <pct>] [--allow-missing] [--max-rows <n>]
//! ```
//!
//! `aggregate` prints a markdown dashboard of every manifest and can
//! write a single merged manifest (the committed `BENCH_*.json` format).
//! `compare` diffs current against baseline metric-by-metric and exits
//! non-zero when any delta breaches the threshold (default 2%), which is
//! what CI runs as the perf/accuracy smoke gate.

use std::path::Path;
use std::process::ExitCode;

use gscalar_bench::load_manifests;
use gscalar_metrics::{aggregate_markdown, compare, dropped_event_warnings, CompareConfig};

fn usage() -> ExitCode {
    eprintln!("usage: report aggregate <dir|file> [--merge <out.json>]");
    eprintln!("       report compare <baseline> <current> [--threshold <pct>]");
    eprintln!("              [--allow-missing] [--max-rows <n>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("aggregate") => aggregate_cmd(&args[1..]),
        Some("compare") => compare_cmd(&args[1..]),
        _ => usage(),
    }
}

fn aggregate_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let manifests = match load_manifests(Path::new(path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", aggregate_markdown(&manifests));
    for w in dropped_event_warnings(&manifests) {
        eprintln!("report: {w}");
    }
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        if a == "--merge" {
            let Some(out) = it.next() else {
                return usage();
            };
            let merged = gscalar_metrics::compare::merge_manifests(&manifests, "BENCH_baseline");
            if let Err(e) = std::fs::write(out, merged.to_json()) {
                eprintln!("error writing {out}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("merged {} manifests into {out}", manifests.len());
        }
    }
    ExitCode::SUCCESS
}

fn compare_cmd(args: &[String]) -> ExitCode {
    let (Some(base_path), Some(cur_path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let mut cfg = CompareConfig::default();
    let mut max_rows = 20usize;
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => cfg.default_threshold_pct = t,
                None => return usage(),
            },
            "--allow-missing" => cfg.fail_on_missing = false,
            "--max-rows" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => max_rows = n,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let load = |p: &str| match load_manifests(Path::new(p)) {
        Ok(m) => Some(m),
        Err(e) => {
            eprintln!("error: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (load(base_path), load(cur_path)) else {
        return ExitCode::FAILURE;
    };
    let report = compare(&baseline, &current, &cfg);
    print!("{}", report.render(max_rows));
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
