//! Criterion micro-benchmarks for the compression hardware models:
//! the byte-wise scheme (ours) vs BDI (Warped-Compression baseline).
//!
//! The paper's Section 3.1 argues the byte-wise scheme is simpler than
//! BDI in hardware; in software the same structural simplicity shows up
//! as fewer operations per register.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gscalar_compress::{bdi, bytewise, full_mask};
use std::hint::black_box;

fn patterns() -> Vec<(&'static str, Vec<u32>)> {
    vec![
        ("scalar", vec![42u32; 32]),
        (
            "addresses",
            (0..32u32).map(|i| 0x1000_0000 + i * 4).collect(),
        ),
        (
            "noise",
            (0..32u32)
                .map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(9))
                .collect(),
        ),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    for (name, values) in patterns() {
        g.bench_function(format!("bytewise/{name}"), |b| {
            b.iter(|| bytewise::encode(black_box(&values), full_mask(32)))
        });
        g.bench_function(format!("bdi/{name}"), |b| {
            b.iter(|| bdi::compress(black_box(&values)))
        });
    }
    g.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("roundtrip");
    for (name, values) in patterns() {
        g.bench_function(format!("bytewise/{name}"), |b| {
            b.iter_batched(
                || values.clone(),
                |v| {
                    let compressed = bytewise::compress(&v);
                    bytewise::decompress(black_box(&compressed), 32)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_divergent_encode(c: &mut Criterion) {
    let values: Vec<u32> = (0..32u32).map(|i| if i % 3 == 0 { 9 } else { 7 }).collect();
    let mask: u64 = (0..32).filter(|l| l % 3 != 0).fold(0, |m, l| m | (1 << l));
    c.bench_function("encode/divergent_mask", |b| {
        b.iter(|| bytewise::encode(black_box(&values), black_box(mask)))
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_roundtrip,
    bench_divergent_encode
);
criterion_main!(benches);
