//! Criterion benchmarks for the static-analysis substrate: CFG
//! construction + post-dominators, liveness, and the register-metadata
//! write path.

use criterion::{criterion_group, criterion_main, Criterion};
use gscalar_compress::regmeta::MetaConfig;
use gscalar_compress::{full_mask, RegFileMeta};
use gscalar_isa::{Cfg, CmpOp, KernelBuilder, Liveness, Operand};
use std::hint::black_box;

/// A kernel with nested control flow and loops, ~100 instructions.
fn analysis_kernel() -> gscalar_isa::Kernel {
    let mut b = KernelBuilder::new("bench");
    let x = b.mov(Operand::Imm(0));
    let i = b.mov(Operand::Imm(0));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, i.into(), Operand::Imm(8)).into(),
        |b| {
            let p = b.isetp(CmpOp::Gt, x.into(), Operand::Imm(4));
            b.if_else(
                p.into(),
                |b| {
                    for _ in 0..8 {
                        b.iadd_to(x, x.into(), Operand::Imm(1));
                    }
                },
                |b| {
                    let q = b.isetp(CmpOp::Lt, x.into(), Operand::Imm(2));
                    b.if_then(q.into(), |b| {
                        for _ in 0..8 {
                            b.imul(x.into(), Operand::Imm(3));
                        }
                    });
                },
            );
            b.iadd_to(i, i.into(), Operand::Imm(1));
        },
    );
    for _ in 0..40 {
        b.iadd_to(x, x.into(), Operand::Imm(1));
    }
    b.exit();
    b.build().expect("bench kernel builds")
}

fn bench_cfg(c: &mut Criterion) {
    let k = analysis_kernel();
    c.bench_function("analysis/cfg_postdom", |b| {
        b.iter(|| Cfg::build(black_box(k.instrs())))
    });
    let cfg = Cfg::build(k.instrs());
    c.bench_function("analysis/liveness", |b| {
        b.iter(|| Liveness::analyze(black_box(k.instrs()), &cfg, k.num_regs()))
    });
}

fn bench_regmeta(c: &mut Criterion) {
    let addresses: Vec<u32> = (0..32u32).map(|i| 0x1000_0000 + i * 4).collect();
    let uniform = vec![7u32; 32];
    c.bench_function("regmeta/write_compressed", |b| {
        let mut m = RegFileMeta::new(64, MetaConfig::g_scalar(32));
        let mut r = 0usize;
        b.iter(|| {
            m.write(r % 64, black_box(&addresses), full_mask(32));
            r += 1;
        })
    });
    c.bench_function("regmeta/write_scalar_read", |b| {
        let mut m = RegFileMeta::new(64, MetaConfig::g_scalar(32));
        b.iter(|| {
            m.write(0, black_box(&uniform), full_mask(32));
            black_box(m.read(0, full_mask(32)).scalar)
        })
    });
    c.bench_function("regmeta/divergent_write", |b| {
        let mut m = RegFileMeta::new(64, MetaConfig::g_scalar(32));
        b.iter(|| m.write(0, black_box(&uniform), 0x0000_FFFF))
    });
}

criterion_group!(benches, bench_cfg, bench_regmeta);
criterion_main!(benches);
