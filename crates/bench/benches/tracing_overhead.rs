//! Tracing-overhead benchmark: the disabled-tracer path must cost
//! almost nothing (target ≤2% vs the untraced run loop), and the
//! enabled path's cost is reported for reference.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gscalar_core::{Arch, Runner};
use gscalar_sim::GpuConfig;
use gscalar_trace::{EventBuf, Tracer};
use gscalar_workloads::{by_abbr, Scale};
use std::hint::black_box;

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracing");
    g.sample_size(20);
    let runner = Runner::new(GpuConfig::test_small());
    let w = by_abbr("BP", Scale::Test).expect("known benchmark");
    let instrs = runner.run(&w, Arch::GScalar).stats.instr.warp_instrs;
    g.throughput(Throughput::Elements(instrs));

    // Baseline: the plain run loop (internally an off-tracer).
    g.bench_function("off/run", |b| {
        b.iter(|| black_box(runner.run(&w, Arch::GScalar).stats.cycles))
    });

    // Explicit off-tracer through the traced entry point: measures the
    // dispatch overhead of the Option branch alone.
    g.bench_function("off/run_traced", |b| {
        b.iter(|| {
            let mut t = Tracer::off();
            black_box(runner.run_traced(&w, Arch::GScalar, &mut t, 0).stats.cycles)
        })
    });

    // Enabled: ring-buffered sink plus interval snapshots.
    g.bench_function("on/event_buf", |b| {
        b.iter(|| {
            let mut buf = EventBuf::new(1 << 16);
            let mut t = Tracer::new(&mut buf);
            let cycles = runner
                .run_traced(&w, Arch::GScalar, &mut t, 64)
                .stats
                .cycles;
            black_box((cycles, buf.len()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
