//! Tracing- and metrics-overhead benchmark: the disabled-tracer and
//! disabled-observer paths must cost almost nothing (target ≤2% vs the
//! untraced run loop), and the enabled paths' costs are reported for
//! reference.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gscalar_core::{Arch, Runner};
use gscalar_profile::Profiler;
use gscalar_sim::{Gpu, GpuConfig, MetricsObserver, NullObserver};
use gscalar_trace::{EventBuf, Tracer};
use gscalar_workloads::{by_abbr, Scale};
use std::hint::black_box;

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracing");
    g.sample_size(20);
    let runner = Runner::new(GpuConfig::test_small());
    let w = by_abbr("BP", Scale::Test).expect("known benchmark");
    let instrs = runner.run(&w, Arch::GScalar).stats.instr.warp_instrs;
    g.throughput(Throughput::Elements(instrs));

    // Baseline: the plain run loop (internally an off-tracer).
    g.bench_function("off/run", |b| {
        b.iter(|| black_box(runner.run(&w, Arch::GScalar).stats.cycles))
    });

    // Explicit off-tracer through the traced entry point: measures the
    // dispatch overhead of the Option branch alone.
    g.bench_function("off/run_traced", |b| {
        b.iter(|| {
            let mut t = Tracer::off();
            black_box(runner.run_traced(&w, Arch::GScalar, &mut t, 0).stats.cycles)
        })
    });

    // Enabled: ring-buffered sink plus interval snapshots.
    g.bench_function("on/event_buf", |b| {
        b.iter(|| {
            let mut buf = EventBuf::new(1 << 16);
            let mut t = Tracer::new(&mut buf);
            let cycles = runner
                .run_traced(&w, Arch::GScalar, &mut t, 64)
                .stats
                .cycles;
            black_box((cycles, buf.len()))
        })
    });

    // Metrics-off: the observed entry point with a null observer and no
    // sampling — measures the per-iteration interval check alone.
    g.bench_function("metrics-off/run_observed", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::test_small(), Arch::GScalar.config());
            let mut mem = w.memory.clone();
            let stats = gpu.run_observed(
                &w.kernel,
                w.launch,
                &mut mem,
                &mut Tracer::off(),
                0,
                0,
                &mut NullObserver,
            );
            black_box(stats.cycles)
        })
    });

    // Metrics-on: registry observer with 64-cycle interval series.
    g.bench_function("metrics-on/run_observed", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::test_small(), Arch::GScalar.config());
            let mut mem = w.memory.clone();
            let mut obs = MetricsObserver::new();
            let stats = gpu.run_observed(
                &w.kernel,
                w.launch,
                &mut mem,
                &mut Tracer::off(),
                0,
                64,
                &mut obs,
            );
            black_box((stats.cycles, obs.into_registry().flatten().len()))
        })
    });

    // Profiler-off: the profiled entry point with a disabled profiler —
    // measures the per-hook `Option` checks alone (same ≤2% target as
    // the off-tracer path).
    g.bench_function("profile-off/run_profiled", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::test_small(), Arch::GScalar.config());
            let mut mem = w.memory.clone();
            let stats = gpu.run_profiled(
                &w.kernel,
                w.launch,
                &mut mem,
                &mut Tracer::off(),
                &mut Profiler::off(),
            );
            black_box(stats.cycles)
        })
    });

    // Profiler-on: full per-PC attribution (issues, stalls, classes,
    // latencies, compressor outcomes, branch paths).
    g.bench_function("profile-on/run_profiled", |b| {
        b.iter(|| {
            let run = runner.run_profiled(&w, Arch::GScalar);
            black_box((run.report.stats.cycles, run.profile.total_issues()))
        })
    });

    // Full instrumentation: registry + interval power timeline +
    // energy/power summary gauges (what the `--json` bench path uses).
    g.bench_function("metrics-on/run_metered", |b| {
        b.iter(|| {
            let run = runner.run_metered(&w, Arch::GScalar, 64);
            black_box((run.report.stats.cycles, run.timeline.intervals().len()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
