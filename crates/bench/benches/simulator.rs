//! Criterion benchmarks for simulator throughput: warp instructions
//! simulated per second on representative kernels, per architecture.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gscalar_core::{Arch, Runner};
use gscalar_sim::GpuConfig;
use gscalar_workloads::{by_abbr, Scale};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    let runner = Runner::new(GpuConfig::test_small());
    for abbr in ["BP", "LBM", "MM"] {
        let w = by_abbr(abbr, Scale::Test).expect("known benchmark");
        // Measure throughput in warp instructions.
        let instrs = runner.run(&w, Arch::Baseline).stats.instr.warp_instrs;
        g.throughput(Throughput::Elements(instrs));
        for arch in [Arch::Baseline, Arch::GScalar] {
            g.bench_function(format!("{abbr}/{}", arch.label()), |b| {
                b.iter(|| black_box(runner.run(&w, arch).stats.cycles))
            });
        }
    }
    g.finish();
}

/// Serial engine vs the epoch-barrier parallel engine on the full
/// 15-SM configuration (1 SM, as in `test_small`, would collapse the
/// parallel path back to serial). Same workload, byte-identical
/// results — the interesting number is the wall-clock ratio.
fn bench_parallel_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_engine");
    g.sample_size(10);
    let w = by_abbr("MM", Scale::Test).expect("known benchmark");
    for threads in [1usize, 2, 4] {
        let mut cfg = GpuConfig::gtx480();
        cfg.exec_threads = threads;
        let runner = Runner::new(cfg);
        g.bench_function(format!("MM/threads={threads}"), |b| {
            b.iter(|| black_box(runner.run(&w, Arch::GScalar).stats.cycles))
        });
    }
    g.finish();
}

fn bench_simt_stack(c: &mut Criterion) {
    use gscalar_sim::simt::SimtStack;
    c.bench_function("simt_stack/diverge_reconverge", |b| {
        b.iter(|| {
            let mut s = SimtStack::new(0, u64::MAX);
            for i in 0..16 {
                s.branch(0x5555_5555_5555_5555 << (i % 2), 10, 1, Some(20));
                s.advance(20);
                s.advance(20);
            }
            s.exit();
            black_box(s.is_done())
        })
    });
}

criterion_group!(
    benches,
    bench_kernels,
    bench_parallel_engine,
    bench_simt_stack
);
criterion_main!(benches);
