//! Hostprof-overhead benchmark: the disabled phase-guard path threaded
//! through the per-cycle loop must cost within noise of the
//! uninstrumented baseline (a relaxed atomic load per probe), and the
//! enabled path's cost is reported for reference.
//!
//! Besides the criterion report, `disabled_guard_cost_is_noise`
//! asserts an absolute bound: a disabled `hostprof::phase` guard must
//! stay under 1 µs per enter/exit pair — orders of magnitude of slack
//! over the expected few-ns cost, but tight enough to catch an
//! accidental branch into the timing path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gscalar_core::{Arch, Runner};
use gscalar_hostprof as hostprof;
use gscalar_sim::GpuConfig;
use gscalar_workloads::{by_abbr, Scale};
use std::hint::black_box;
use std::time::Instant;

fn disabled_guard_cost_is_noise() {
    hostprof::set_enabled(false);
    hostprof::reset();
    const ITERS: u32 = 1_000_000;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        let g = hostprof::phase(hostprof::Phase::Execute);
        black_box(&g);
        drop(g);
    }
    let per_call_ns = t0.elapsed().as_nanos() as f64 / f64::from(ITERS);
    assert!(
        per_call_ns < 1_000.0,
        "disabled hostprof guard costs {per_call_ns:.1} ns/call (limit 1000)"
    );
    eprintln!("disabled hostprof guard: {per_call_ns:.2} ns/call");
}

fn bench_hostprof(c: &mut Criterion) {
    // The absolute-bound assertion runs once, before the groups, so a
    // regression fails the bench binary even when criterion's
    // statistics would smooth it over.
    disabled_guard_cost_is_noise();

    let mut g = c.benchmark_group("hostprof");
    g.sample_size(20);
    let runner = Runner::new(GpuConfig::test_small());
    let w = by_abbr("BP", Scale::Test).expect("known benchmark");
    let instrs = runner.run(&w, Arch::GScalar).stats.instr.warp_instrs;
    g.throughput(Throughput::Elements(instrs));

    // Baseline: the instrumented run loop with profiling disabled —
    // each probe is a single relaxed load.
    hostprof::set_enabled(false);
    hostprof::reset();
    g.bench_function("off/run", |b| {
        b.iter(|| black_box(runner.run(&w, Arch::GScalar).stats.cycles))
    });

    // Enabled: every probe reads the monotonic clock twice and charges
    // a thread-local accumulator.
    g.bench_function("on/run", |b| {
        hostprof::set_enabled(true);
        b.iter(|| black_box(runner.run(&w, Arch::GScalar).stats.cycles));
        hostprof::set_enabled(false);
        hostprof::reset();
    });

    // Micro: the guard pair itself, disabled vs enabled.
    g.bench_function("off/guard", |b| {
        hostprof::set_enabled(false);
        b.iter(|| {
            let g = hostprof::phase(hostprof::Phase::Execute);
            black_box(&g);
        })
    });
    g.bench_function("on/guard", |b| {
        hostprof::set_enabled(true);
        b.iter(|| {
            let g = hostprof::phase(hostprof::Phase::Execute);
            black_box(&g);
        });
        hostprof::set_enabled(false);
        hostprof::reset();
    });
    g.finish();
}

criterion_group!(benches, bench_hostprof);
criterion_main!(benches);
