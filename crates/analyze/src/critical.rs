//! Critical-path attribution over the cycle trace: which warps and
//! resources block issue the longest.
//!
//! The input is the recorded event stream ([`Record`]s). Stall events
//! carry `(sm, sched, culprit warp, reason)`; a *chain* is a maximal
//! span of cycles during which one scheduler kept stalling with the
//! same culprit and reason. Idle-skip jumps leave gaps in `now`, but a
//! gap between two identical stalls means nothing happened in between,
//! so the chain keeps spanning it — chain lengths are real cycles, not
//! event counts.
//!
//! The trace sink is a bounded ring, so a long run may have dropped its
//! oldest events; the analysis then covers the retained window (the
//! tail of the run), which is where drain bottlenecks live anyway.

use std::collections::BTreeMap;

use gscalar_sim::Stats;
use gscalar_trace::{Record, StallBreakdown, StallReason, TraceEvent};

/// A maximal run of identical stalls on one scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallChain {
    /// SM that stalled.
    pub sm: u32,
    /// Scheduler within the SM.
    pub sched: u32,
    /// Culprit warp (slot index), when one epitomized the stall.
    pub warp: Option<u32>,
    /// Why the scheduler stalled.
    pub reason: StallReason,
    /// First stalled cycle.
    pub start: u64,
    /// Last stalled cycle (inclusive).
    pub end: u64,
}

impl StallChain {
    /// Chain length in cycles (spanning idle-skip gaps).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Whether the chain is empty (never: kept for clippy symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// One warp's total attributed stall cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpStalls {
    /// SM the warp ran on.
    pub sm: u32,
    /// Warp slot index.
    pub warp: u32,
    /// Cycles this warp was the stall culprit (summed chain lengths).
    pub cycles: u64,
}

/// Memory-level-parallelism profile from the MSHR occupancy samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpProfile {
    /// Number of L1-miss allocations sampled.
    pub samples: u64,
    /// Mean live outstanding misses at allocation time.
    pub mean: f64,
    /// Peak observed occupancy.
    pub max: u64,
}

impl MlpProfile {
    /// Extracts the profile from a run's (merged or per-SM) statistics.
    #[must_use]
    pub fn from_stats(stats: &Stats) -> Self {
        let h = &stats.mem.mshr_occupancy;
        MlpProfile {
            samples: h.count(),
            mean: h.mean(),
            max: h.max().unwrap_or(0),
        }
    }
}

/// The critical-path summary of one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Longest stall chains, sorted by length descending (ties by
    /// `(sm, sched, start)` so the output is deterministic).
    pub chains: Vec<StallChain>,
    /// Stall events seen in the retained trace window.
    pub stall_events: u64,
    /// Stall-event counts per reason (event counts, not cycles: bulk
    /// idle-skip charges emit no events).
    pub by_reason: StallBreakdown,
    /// Warps ranked by total attributed stall cycles, descending (ties
    /// by `(sm, warp)`).
    pub top_warps: Vec<WarpStalls>,
}

/// Scans `records` and extracts the longest `top` stall chains plus
/// per-warp and per-reason attribution.
#[must_use]
pub fn analyze_trace(records: &[Record], top: usize) -> CriticalPath {
    // One open chain per (sm, sched); BTreeMap for deterministic
    // iteration when flushing.
    let mut open: BTreeMap<(u32, u32), StallChain> = BTreeMap::new();
    let mut chains: Vec<StallChain> = Vec::new();
    let mut by_reason = StallBreakdown::default();
    let mut stall_events = 0u64;

    for r in records {
        let TraceEvent::Stall {
            sm,
            sched,
            warp,
            reason,
        } = r.ev
        else {
            continue;
        };
        stall_events += 1;
        by_reason.add(reason);
        let key = (sm, sched);
        match open.get_mut(&key) {
            Some(c) if c.warp == warp && c.reason == reason && r.now > c.end => {
                c.end = r.now;
            }
            Some(c) => {
                chains.push(*c);
                *c = StallChain {
                    sm,
                    sched,
                    warp,
                    reason,
                    start: r.now,
                    end: r.now,
                };
            }
            None => {
                open.insert(
                    key,
                    StallChain {
                        sm,
                        sched,
                        warp,
                        reason,
                        start: r.now,
                        end: r.now,
                    },
                );
            }
        }
    }
    chains.extend(open.into_values());

    // Per-warp attribution from the closed chains.
    let mut warps: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for c in &chains {
        if let Some(w) = c.warp {
            *warps.entry((c.sm, w)).or_default() += c.len();
        }
    }
    let mut top_warps: Vec<WarpStalls> = warps
        .into_iter()
        .map(|((sm, warp), cycles)| WarpStalls { sm, warp, cycles })
        .collect();
    top_warps.sort_by(|a, b| {
        b.cycles
            .cmp(&a.cycles)
            .then(a.sm.cmp(&b.sm))
            .then(a.warp.cmp(&b.warp))
    });
    top_warps.truncate(top);

    chains.sort_by(|a, b| {
        b.len()
            .cmp(&a.len())
            .then(a.sm.cmp(&b.sm))
            .then(a.sched.cmp(&b.sched))
            .then(a.start.cmp(&b.start))
    });
    chains.truncate(top);

    CriticalPath {
        chains,
        stall_events,
        by_reason,
        top_warps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stall(now: u64, sm: u32, sched: u32, warp: Option<u32>, reason: StallReason) -> Record {
        Record {
            now,
            ev: TraceEvent::Stall {
                sm,
                sched,
                warp,
                reason,
            },
        }
    }

    #[test]
    fn chains_span_idle_skip_gaps() {
        // Cycles 5..=6 recorded, then a skip to 20: one chain of 16.
        let recs = vec![
            stall(5, 0, 0, Some(2), StallReason::MemPending),
            stall(6, 0, 0, Some(2), StallReason::MemPending),
            stall(20, 0, 0, Some(2), StallReason::MemPending),
        ];
        let cp = analyze_trace(&recs, 8);
        assert_eq!(cp.chains.len(), 1);
        assert_eq!(cp.chains[0].len(), 16);
        assert_eq!(cp.stall_events, 3);
        assert_eq!(cp.by_reason.get(StallReason::MemPending), 3);
        assert_eq!(
            cp.top_warps,
            vec![WarpStalls {
                sm: 0,
                warp: 2,
                cycles: 16
            }]
        );
    }

    #[test]
    fn reason_or_warp_change_breaks_the_chain() {
        let recs = vec![
            stall(1, 0, 0, Some(1), StallReason::Scoreboard),
            stall(2, 0, 0, Some(1), StallReason::MemPending),
            stall(3, 0, 0, Some(3), StallReason::MemPending),
            stall(4, 0, 1, Some(1), StallReason::Scoreboard), // other sched
        ];
        let cp = analyze_trace(&recs, 8);
        assert_eq!(cp.chains.len(), 4);
        assert!(cp.chains.iter().all(|c| c.len() == 1));
        // Warp 1 is culprit in three of the four chains (twice on
        // scheduler 0, once on scheduler 1): 3 cycles attributed.
        assert_eq!(cp.top_warps[0].warp, 1);
        assert_eq!(cp.top_warps[0].cycles, 3);
    }

    #[test]
    fn top_truncates_and_sorts_longest_first() {
        let mut recs = Vec::new();
        // Sched 0: 10-cycle chain; sched 1: 3-cycle chain.
        for t in 0..10 {
            recs.push(stall(t, 0, 0, None, StallReason::Drained));
        }
        for t in 0..3 {
            recs.push(stall(t, 0, 1, Some(7), StallReason::Barrier));
        }
        let cp = analyze_trace(&recs, 1);
        assert_eq!(cp.chains.len(), 1);
        assert_eq!(cp.chains[0].sched, 0);
        assert_eq!(cp.chains[0].len(), 10);
        // Drained chains have no culprit; only warp 7 is attributed.
        assert_eq!(cp.top_warps.len(), 1);
        assert_eq!(cp.top_warps[0].warp, 7);
    }

    #[test]
    fn non_stall_events_are_ignored() {
        let recs = vec![Record {
            now: 1,
            ev: TraceEvent::SimtPop {
                sm: 0,
                warp: 0,
                pc: 0,
                depth: 0,
            },
        }];
        let cp = analyze_trace(&recs, 4);
        assert_eq!(cp.stall_events, 0);
        assert!(cp.chains.is_empty());
        assert!(cp.top_warps.is_empty());
    }
}
