//! CPI stacks: the exact decomposition of every issue slot.
//!
//! A *slot* is one scheduler-cycle: each simulated cycle, each
//! scheduler of each SM either issues an instruction or is charged
//! exactly one classified stall (cycle-by-cycle in
//! [`SchedStats::stalls`], or in bulk for idle-skip jumps in
//! [`SchedStats::skipped`]). The stack therefore *reconciles*: its
//! seven components sum to `cycles × ledgers`, where a ledger is one
//! (SM, scheduler) pair. Any difference is an accounting bug in the
//! simulator, which [`CpiStack::reconcile`] turns into a hard error.

use gscalar_sim::{SchedStats, Stats};
use gscalar_trace::StallReason;

/// Component labels in rendering order, index-aligned with
/// [`CpiStack::components`].
pub const COMPONENT_LABELS: [&str; 7] = [
    "base_issue",
    "scoreboard",
    "mem_pending",
    "barrier",
    "drained",
    "operand_collect",
    "structural",
];

/// A reconciliation failure: the components do not sum to the slots the
/// run must account for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconcileError {
    /// Slots the run elapsed (`cycles × ledgers`).
    pub expected: u64,
    /// Slots the components sum to.
    pub actual: u64,
}

impl std::fmt::Display for ReconcileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CPI stack does not reconcile: components sum to {} slots, run elapsed {}",
            self.actual, self.expected
        )
    }
}

/// An exact decomposition of issue slots into where they went.
///
/// Stall components aggregate both the cycle-by-cycle charges and the
/// idle-skip bulk charges for their reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpiStack {
    /// Elapsed cycles this stack spans.
    pub cycles: u64,
    /// Number of (SM, scheduler) ledgers aggregated; total slots are
    /// `cycles × ledgers`.
    pub ledgers: u64,
    /// Slots that issued an instruction.
    pub base_issue: u64,
    /// Slots blocked on ALU/SFU scoreboard dependencies.
    pub scoreboard: u64,
    /// Slots blocked on outstanding loads/stores.
    pub mem_pending: u64,
    /// Slots blocked at CTA barriers.
    pub barrier: u64,
    /// Slots with no live warp (kernel-tail drain).
    pub drained: u64,
    /// Slots blocked on operand-collector capacity.
    pub operand_collect: u64,
    /// Slots blocked on collector capacity with RF bank conflicts (the
    /// structural back-pressure refinement).
    pub structural: u64,
}

impl CpiStack {
    /// Aggregates per-scheduler ledgers into one stack. `cycles` is the
    /// elapsed-cycle span every ledger covers and `ledgers` how many
    /// (SM, scheduler) pairs `scheds` sums over.
    pub fn from_ledgers<'a, I>(scheds: I, cycles: u64, ledgers: u64) -> Self
    where
        I: IntoIterator<Item = &'a SchedStats>,
    {
        let mut st = CpiStack {
            cycles,
            ledgers,
            ..CpiStack::default()
        };
        for sc in scheds {
            st.base_issue += sc.issued;
            for (reason, n) in sc.stalls.iter().chain(sc.skipped.iter()) {
                match reason {
                    StallReason::Scoreboard => st.scoreboard += n,
                    StallReason::MemPending => st.mem_pending += n,
                    StallReason::Barrier => st.barrier += n,
                    StallReason::Drained => st.drained += n,
                    StallReason::NoCollector => st.operand_collect += n,
                    StallReason::RfBankConflict => st.structural += n,
                }
            }
        }
        st
    }

    /// The kernel-level stack from merged statistics: `stats.sched` has
    /// one entry per scheduler, each already summed over `num_sms` SMs.
    #[must_use]
    pub fn kernel(stats: &Stats, num_sms: usize) -> Self {
        Self::from_ledgers(
            stats.sched.iter(),
            stats.cycles,
            (num_sms * stats.sched.len()) as u64,
        )
    }

    /// A single SM's stack. Per-SM statistics do not carry the global
    /// cycle count (only the merged view does), so it is passed in.
    #[must_use]
    pub fn sm(sm_stats: &Stats, cycles: u64) -> Self {
        Self::from_ledgers(sm_stats.sched.iter(), cycles, sm_stats.sched.len() as u64)
    }

    /// One scheduler's stack; `sm_ledgers` is how many SMs the ledger
    /// was merged over (1 for a per-SM view).
    #[must_use]
    pub fn scheduler(sc: &SchedStats, cycles: u64, sm_ledgers: u64) -> Self {
        Self::from_ledgers(std::iter::once(sc), cycles, sm_ledgers)
    }

    /// `(label, slots)` pairs in [`COMPONENT_LABELS`] order.
    #[must_use]
    pub fn components(&self) -> [(&'static str, u64); 7] {
        [
            ("base_issue", self.base_issue),
            ("scoreboard", self.scoreboard),
            ("mem_pending", self.mem_pending),
            ("barrier", self.barrier),
            ("drained", self.drained),
            ("operand_collect", self.operand_collect),
            ("structural", self.structural),
        ]
    }

    /// Slots the components sum to.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.components().iter().map(|(_, n)| n).sum()
    }

    /// Slots the run must account for (`cycles × ledgers`).
    #[must_use]
    pub fn expected_slots(&self) -> u64 {
        self.cycles * self.ledgers
    }

    /// Verifies the accounting identity.
    ///
    /// # Errors
    ///
    /// Returns a [`ReconcileError`] when the components do not sum
    /// exactly to `cycles × ledgers`.
    pub fn reconcile(&self) -> Result<(), ReconcileError> {
        let actual = self.total_slots();
        let expected = self.expected_slots();
        if actual == expected {
            Ok(())
        } else {
            Err(ReconcileError { expected, actual })
        }
    }

    /// Fraction of all slots each component takes, in
    /// [`COMPONENT_LABELS`] order; zeros when the stack is empty.
    #[must_use]
    pub fn shares(&self) -> [f64; 7] {
        let t = self.total_slots();
        if t == 0 {
            return [0.0; 7];
        }
        self.components().map(|(_, n)| n as f64 / t as f64)
    }

    /// Cycles-per-instruction contribution of each component, in
    /// [`COMPONENT_LABELS`] order: the classic CPI-stack view, where
    /// the entries sum to total CPI (`cycles × ledgers / issued`).
    /// Zeros when nothing issued.
    #[must_use]
    pub fn cpi_contributions(&self) -> [f64; 7] {
        if self.base_issue == 0 {
            return [0.0; 7];
        }
        self.components()
            .map(|(_, n)| n as f64 / self.base_issue as f64)
    }

    /// The stall component with the most slots, as `(label, slots)` —
    /// the headline bottleneck (`base_issue` excluded). Ties resolve to
    /// the earlier label in [`COMPONENT_LABELS`] order.
    #[must_use]
    pub fn top_bottleneck(&self) -> (&'static str, u64) {
        let mut best = ("scoreboard", self.scoreboard);
        for (label, n) in self.components().into_iter().skip(2) {
            if n > best.1 {
                best = (label, n);
            }
        }
        best
    }

    /// Exports the stack under `scope`: per-component slot counters
    /// plus the reconciliation gauges.
    pub fn export(&self, scope: &mut gscalar_metrics::Scope<'_>) {
        scope.counter_add("cycles", self.cycles);
        scope.counter_add("ledgers", self.ledgers);
        for (label, n) in self.components() {
            scope.counter_add(label, n);
        }
        let shares = self.shares();
        for (label, share) in COMPONENT_LABELS.iter().zip(shares.iter()) {
            scope.gauge_set(&format!("{label}_share"), *share);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gscalar_trace::StallBreakdown;

    fn ledger(
        issued: u64,
        stall: &[(StallReason, u64)],
        skip: &[(StallReason, u64)],
    ) -> SchedStats {
        let mut stalls = StallBreakdown::default();
        for &(r, n) in stall {
            stalls.add_n(r, n);
        }
        let mut skipped = StallBreakdown::default();
        for &(r, n) in skip {
            skipped.add_n(r, n);
        }
        SchedStats {
            issued,
            stalls,
            skipped,
        }
    }

    #[test]
    fn components_aggregate_stalls_and_skips() {
        let a = ledger(
            10,
            &[(StallReason::MemPending, 5), (StallReason::Scoreboard, 3)],
            &[(StallReason::MemPending, 2)],
        );
        let b = ledger(
            15,
            &[(StallReason::Drained, 4), (StallReason::RfBankConflict, 1)],
            &[],
        );
        let st = CpiStack::from_ledgers([&a, &b], 20, 2);
        assert_eq!(st.base_issue, 25);
        assert_eq!(st.mem_pending, 7);
        assert_eq!(st.scoreboard, 3);
        assert_eq!(st.drained, 4);
        assert_eq!(st.structural, 1);
        assert_eq!(st.total_slots(), 40);
        assert!(st.reconcile().is_ok());
        assert_eq!(st.top_bottleneck(), ("mem_pending", 7));
    }

    #[test]
    fn reconcile_reports_exact_slot_counts() {
        let a = ledger(10, &[(StallReason::Barrier, 5)], &[]);
        let st = CpiStack::from_ledgers([&a], 20, 1);
        let err = st.reconcile().unwrap_err();
        assert_eq!(
            err,
            ReconcileError {
                expected: 20,
                actual: 15
            }
        );
        assert!(err.to_string().contains("15"));
    }

    #[test]
    fn shares_and_cpi_sum_consistently() {
        let a = ledger(
            8,
            &[(StallReason::MemPending, 6), (StallReason::Barrier, 2)],
            &[(StallReason::Drained, 4)],
        );
        let st = CpiStack::from_ledgers([&a], 20, 1);
        assert!(st.reconcile().is_ok());
        let share_sum: f64 = st.shares().iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
        let cpi_sum: f64 = st.cpi_contributions().iter().sum();
        assert!((cpi_sum - 20.0 / 8.0).abs() < 1e-12);
        // Empty stacks stay finite.
        assert_eq!(CpiStack::default().shares(), [0.0; 7]);
        assert_eq!(CpiStack::default().cpi_contributions(), [0.0; 7]);
    }

    #[test]
    fn kernel_and_views_cover_the_same_slots() {
        let stats = Stats {
            cycles: 30,
            sched: vec![
                ledger(
                    20,
                    &[(StallReason::MemPending, 30)],
                    &[(StallReason::Drained, 10)],
                ),
                ledger(
                    25,
                    &[(StallReason::Scoreboard, 20)],
                    &[(StallReason::Drained, 15)],
                ),
            ],
            ..Default::default()
        };
        // Two SMs × two schedulers merged: 30 cycles × 4 ledgers.
        let k = CpiStack::kernel(&stats, 2);
        assert_eq!(k.expected_slots(), 120);
        assert!(k.reconcile().is_ok());
        // Per-scheduler views split the same slots.
        let s0 = CpiStack::scheduler(&stats.sched[0], 30, 2);
        let s1 = CpiStack::scheduler(&stats.sched[1], 30, 2);
        assert!(s0.reconcile().is_ok());
        assert!(s1.reconcile().is_ok());
        assert_eq!(s0.total_slots() + s1.total_slots(), k.total_slots());
    }
}
