//! What-if projections: analytic speedup estimates from the CPI stack,
//! validated against real idealized re-simulations.
//!
//! Each [`WhatIf`] names one idealization knob of
//! [`gscalar_sim::IdealConfig`]. The *analytic* projection is a
//! first-order model over the CPI stack and run statistics — the point
//! is not that the model is exact, but that its error against a real
//! re-simulation with the knob flipped is *measured and reported*, so
//! the stack's attributions can be trusted (or distrusted) per kernel.

use gscalar_sim::{GpuConfig, Stats};

use crate::cpi::CpiStack;

/// One idealization study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WhatIf {
    /// Every global load hits in L1.
    PerfectL1,
    /// Unbounded miss tracking. The simulator's MSHR model is already
    /// unbounded, so both the projection and the re-simulation honestly
    /// report 1.0× — the study documents the absence of that ceiling.
    InfiniteMshrs,
    /// Branches never split the SIMT stack (forced-uniform execution).
    NoDivergence,
    /// SFU operations complete in one cycle.
    ZeroLatencySfu,
}

impl WhatIf {
    /// Every study, in reporting order.
    pub const ALL: [WhatIf; 4] = [
        WhatIf::PerfectL1,
        WhatIf::InfiniteMshrs,
        WhatIf::NoDivergence,
        WhatIf::ZeroLatencySfu,
    ];

    /// Stable metric/report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WhatIf::PerfectL1 => "perfect_l1",
            WhatIf::InfiniteMshrs => "infinite_mshrs",
            WhatIf::NoDivergence => "no_divergence",
            WhatIf::ZeroLatencySfu => "zero_latency_sfu",
        }
    }

    /// A copy of `base` with exactly this study's idealization knob
    /// flipped on — the configuration for the validating re-simulation.
    #[must_use]
    pub fn apply(self, base: &GpuConfig) -> GpuConfig {
        let mut cfg = base.clone();
        match self {
            WhatIf::PerfectL1 => cfg.ideal.perfect_l1 = true,
            WhatIf::InfiniteMshrs => cfg.ideal.infinite_mshrs = true,
            WhatIf::NoDivergence => cfg.ideal.uniform_branches = true,
            WhatIf::ZeroLatencySfu => cfg.ideal.zero_latency_sfu = true,
        }
        cfg
    }

    /// First-order analytic speedup from the CPI stack and counters.
    ///
    /// Models (all clamped to ≥ 1.0 — removing a bottleneck cannot
    /// analytically slow the machine down):
    ///
    /// * **perfect L1** — memory-pending slots shrink by the ratio of
    ///   L1-hit latency to the counter-weighted average load latency.
    /// * **infinite MSHRs** — 1.0 (the model has no MSHR ceiling).
    /// * **no divergence** — a divergent branch executes both paths;
    ///   roughly half the divergent issue slots are the redundant
    ///   complement and disappear.
    /// * **zero-latency SFU** — scoreboard slots shrink by the SFU's
    ///   share of the latency-weighted instruction mix.
    #[must_use]
    pub fn projected_speedup(self, stack: &CpiStack, stats: &Stats, cfg: &GpuConfig) -> f64 {
        let slots = stack.expected_slots() as f64;
        if slots == 0.0 {
            return 1.0;
        }
        let saved_frac = match self {
            WhatIf::PerfectL1 => {
                let m = &stats.mem;
                let loads = m.l1_hits + m.l1_misses + m.l1_mshr_hits;
                if loads == 0 {
                    0.0
                } else {
                    let lat = &cfg.lat;
                    let l2_total = (m.l2_hits + m.l2_misses).max(1);
                    let dram_share = m.l2_misses as f64 / l2_total as f64;
                    let avg_miss = lat.l2 as f64 + dram_share * lat.dram as f64;
                    // An MSHR merge waits out the tail of an in-flight
                    // fill: half the miss latency on average.
                    let avg_load = (m.l1_hits as f64 * lat.l1_hit as f64
                        + m.l1_misses as f64 * avg_miss
                        + m.l1_mshr_hits as f64 * avg_miss * 0.5)
                        / loads as f64;
                    let shrink = 1.0 - lat.l1_hit as f64 / avg_load.max(lat.l1_hit as f64);
                    stack.mem_pending as f64 / slots * shrink
                }
            }
            WhatIf::InfiniteMshrs => 0.0,
            WhatIf::NoDivergence => stats.instr.divergent_instrs as f64 * 0.5 / slots,
            WhatIf::ZeroLatencySfu => {
                let i = &stats.instr;
                let lat = &cfg.lat;
                let w_sfu = i.sfu_instrs as f64 * lat.sfu as f64;
                let w_alu = i.alu_instrs as f64 * lat.int_alu as f64;
                let w_mem = i.mem_instrs as f64 * lat.l1_hit as f64;
                let mix = w_sfu + w_alu + w_mem;
                if mix == 0.0 {
                    0.0
                } else {
                    let shrink = 1.0 - 1.0 / lat.sfu.max(1) as f64;
                    stack.scoreboard as f64 / slots * (w_sfu / mix) * shrink
                }
            }
        };
        // Cap below 1.0 so pathological attributions cannot project an
        // infinite speedup.
        1.0 / (1.0 - saved_frac.clamp(0.0, 0.95))
    }
}

/// One validated what-if study: analytic projection next to the
/// measured idealized re-simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// The study.
    pub what_if: WhatIf,
    /// Analytic speedup from the CPI stack.
    pub projected: f64,
    /// Measured speedup: baseline cycles / idealized cycles.
    pub measured: f64,
}

impl Projection {
    /// Builds the study from the baseline stack/stats and the cycle
    /// count of the real re-simulation with [`WhatIf::apply`]'s config.
    #[must_use]
    pub fn new(
        what_if: WhatIf,
        stack: &CpiStack,
        stats: &Stats,
        cfg: &GpuConfig,
        ideal_cycles: u64,
    ) -> Self {
        Projection {
            what_if,
            projected: what_if.projected_speedup(stack, stats, cfg),
            measured: if ideal_cycles == 0 {
                1.0
            } else {
                stats.cycles as f64 / ideal_cycles as f64
            },
        }
    }

    /// Relative projection error `|projected − measured| / measured`.
    #[must_use]
    pub fn error(&self) -> f64 {
        if self.measured == 0.0 {
            0.0
        } else {
            (self.projected - self.measured).abs() / self.measured
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gscalar_sim::{IdealConfig, SchedStats};
    use gscalar_trace::{StallBreakdown, StallReason};

    fn mem_bound_run() -> (CpiStack, Stats, GpuConfig) {
        let cfg = GpuConfig::test_small();
        let mut stats = Stats {
            cycles: 1000,
            ..Default::default()
        };
        let mut stalls = StallBreakdown::default();
        stalls.add_n(StallReason::MemPending, 600);
        stalls.add_n(StallReason::Scoreboard, 100);
        stats.sched = vec![SchedStats {
            issued: 300,
            stalls,
            skipped: StallBreakdown::default(),
        }];
        stats.mem.l1_hits = 100;
        stats.mem.l1_misses = 400;
        stats.mem.l2_misses = 400;
        stats.instr.sfu_instrs = 10;
        stats.instr.alu_instrs = 200;
        stats.instr.mem_instrs = 90;
        stats.instr.divergent_instrs = 40;
        let stack = CpiStack::kernel(&stats, 1);
        assert!(stack.reconcile().is_ok());
        (stack, stats, cfg)
    }

    #[test]
    fn apply_flips_exactly_one_knob() {
        let base = GpuConfig::gtx480();
        for w in WhatIf::ALL {
            let cfg = w.apply(&base);
            let IdealConfig {
                perfect_l1,
                uniform_branches,
                zero_latency_sfu,
                infinite_mshrs,
            } = cfg.ideal;
            let on = [
                perfect_l1,
                uniform_branches,
                zero_latency_sfu,
                infinite_mshrs,
            ];
            assert_eq!(on.iter().filter(|&&b| b).count(), 1, "{}", w.label());
            // Everything outside `ideal` is untouched.
            let mut reset = cfg.clone();
            reset.ideal = IdealConfig::default();
            assert_eq!(format!("{reset:?}"), format!("{base:?}"));
        }
    }

    #[test]
    fn memory_bound_run_projects_perfect_l1_highest() {
        let (stack, stats, cfg) = mem_bound_run();
        let l1 = WhatIf::PerfectL1.projected_speedup(&stack, &stats, &cfg);
        let sfu = WhatIf::ZeroLatencySfu.projected_speedup(&stack, &stats, &cfg);
        let mshr = WhatIf::InfiniteMshrs.projected_speedup(&stack, &stats, &cfg);
        assert!(l1 > 1.5, "mem-bound run should project large L1 win ({l1})");
        assert!(l1 > sfu);
        assert_eq!(mshr, 1.0);
        assert!(sfu >= 1.0);
    }

    #[test]
    fn empty_stats_project_unity() {
        let cfg = GpuConfig::test_small();
        let stats = Stats::default();
        let stack = CpiStack::kernel(&stats, 1);
        for w in WhatIf::ALL {
            assert_eq!(w.projected_speedup(&stack, &stats, &cfg), 1.0);
        }
    }

    #[test]
    fn projection_error_is_relative() {
        let (stack, stats, cfg) = mem_bound_run();
        // Fake a measured ideal run at exactly the projected speedup:
        // error must be ~0.
        let projected = WhatIf::PerfectL1.projected_speedup(&stack, &stats, &cfg);
        let ideal_cycles = (stats.cycles as f64 / projected).round() as u64;
        let p = Projection::new(WhatIf::PerfectL1, &stack, &stats, &cfg, ideal_cycles);
        assert!(p.error() < 0.01, "error {} should be small", p.error());
        // A measured value far from the projection yields a large error.
        let p2 = Projection::new(WhatIf::PerfectL1, &stack, &stats, &cfg, stats.cycles);
        assert!((p2.measured - 1.0).abs() < 1e-12);
        assert!(p2.error() > 0.1);
        // Degenerate zero-cycle ideal runs fall back to 1.0×.
        let p3 = Projection::new(WhatIf::InfiniteMshrs, &stack, &stats, &cfg, 0);
        assert_eq!(p3.measured, 1.0);
    }
}
