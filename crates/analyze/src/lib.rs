//! Cycle-accounting analysis over the simulator's telemetry:
//! **why** a run took the cycles it did, and **what would happen** if a
//! bottleneck were removed.
//!
//! Three layers, all consuming outputs the other observability crates
//! already produce (no new on-path simulator work):
//!
//! * [`CpiStack`] — decomposes every scheduler issue slot into
//!   base-issue plus six stall components, with a hard reconciliation
//!   guarantee: the components sum *exactly* to `cycles × ledgers`.
//!   Built from the per-scheduler [`gscalar_sim::SchedStats`] ledgers.
//! * [`analyze_trace`] / [`CriticalPath`] — longest stall chains per
//!   warp, top blocking resources, and (via [`MlpProfile`]) the
//!   memory-level-parallelism profile from MSHR occupancy samples.
//! * [`WhatIf`] / [`Projection`] — analytic speedup projections
//!   (perfect L1, infinite MSHRs, no divergence, zero-latency SFU)
//!   computed from the CPI stack and *validated* by re-simulating the
//!   idealization through [`gscalar_sim::IdealConfig`] overrides,
//!   reporting the projection error per kernel.
//!
//! The `bottleneck` experiment binary in `gscalar-bench` drives all
//! three per suite workload and fails the run when any stack breaches
//! reconciliation.

pub mod cpi;
pub mod critical;
pub mod whatif;

pub use cpi::{CpiStack, ReconcileError, COMPONENT_LABELS};
pub use critical::{analyze_trace, CriticalPath, MlpProfile, StallChain, WarpStalls};
pub use whatif::{Projection, WhatIf};
