//! Full report for one benchmark of the suite: instruction mix, scalar
//! eligibility, register-file behavior, and the power breakdown on
//! every architecture.
//!
//! ```sh
//! cargo run --release --example benchmark_report            # backprop
//! cargo run --release --example benchmark_report -- LBM     # any abbr
//! ```

use gscalar::core::{Arch, Runner};
use gscalar::sim::GpuConfig;
use gscalar::workloads::{by_abbr, Scale, ABBRS};

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "BP".to_owned());
    let Some(w) = by_abbr(&abbr, Scale::Full) else {
        eprintln!("unknown benchmark `{abbr}`; available: {ABBRS:?}");
        std::process::exit(1);
    };
    println!("benchmark: {} ({})", w.name, w.abbr);
    println!(
        "launch: {} CTAs x {} threads, {} static instructions, {} registers\n",
        w.launch.grid.count(),
        w.launch.block.count(),
        w.kernel.len(),
        w.kernel.num_regs()
    );

    let runner = Runner::new(GpuConfig::gtx480());
    let base = runner.run(&w, Arch::Baseline);
    let s = &base.stats;
    let wi = s.instr.warp_instrs as f64;
    println!("== instruction mix (baseline run) ==");
    println!("warp instructions   {}", s.instr.warp_instrs);
    println!("thread instructions {}", s.instr.thread_instrs);
    println!(
        "ALU/SFU/MEM/CTRL    {:.1}% / {:.1}% / {:.1}% / {:.1}%",
        100.0 * s.instr.alu_instrs as f64 / wi,
        100.0 * s.instr.sfu_instrs as f64 / wi,
        100.0 * s.instr.mem_instrs as f64 / wi,
        100.0 * s.instr.ctrl_instrs as f64 / wi
    );
    println!("divergent           {:.1}%", 100.0 * s.divergent_fraction());
    println!("\n== scalar eligibility (Figure 9 categories) ==");
    println!(
        "ALU scalar          {:.1}%",
        100.0 * s.instr.eligible_alu as f64 / wi
    );
    println!(
        "SFU scalar          {:.1}%",
        100.0 * s.instr.eligible_sfu as f64 / wi
    );
    println!(
        "memory scalar       {:.1}%",
        100.0 * s.instr.eligible_mem as f64 / wi
    );
    println!(
        "half-warp scalar    {:.1}%",
        100.0 * s.instr.eligible_half as f64 / wi
    );
    println!(
        "divergent scalar    {:.1}%",
        100.0 * s.instr.eligible_divergent as f64 / wi
    );
    println!(
        "total               {:.1}%",
        100.0 * s.instr.eligible_total() as f64 / wi
    );
    println!("\n== register file ==");
    println!("access distribution: {}", s.rf.histogram);
    println!(
        "compression ratio:   ours {:.2}, BDI {:.2}",
        s.rf.ours_ratio(),
        s.rf.bdi_ratio()
    );
    println!("decompress-moves:    {}", s.instr.decompress_moves);

    println!("\n== power on each architecture ==");
    for arch in Arch::ALL {
        let r = runner.run(&w, arch);
        println!("--- {} ---", arch.label());
        print!("{}", r.power);
        println!(
            "  scalar-executed: {:.1}% | IPC vs baseline: {:+.1}% | IPC/W vs baseline: {:+.1}%",
            100.0 * r.stats.instr.executed_scalar as f64 / r.stats.instr.warp_instrs as f64,
            100.0 * (r.stats.ipc() / base.stats.ipc() - 1.0),
            100.0 * (r.ipc_per_watt() / base.ipc_per_watt() - 1.0),
        );
    }
}
