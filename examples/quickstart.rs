//! Quickstart: build a kernel, run it on the baseline and G-Scalar
//! architectures, and compare power efficiency.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gscalar::core::{Arch, Runner, Workload};
use gscalar::isa::{KernelBuilder, LaunchConfig, Operand, SReg};
use gscalar::sim::memory::GlobalMemory;
use gscalar::sim::GpuConfig;

fn main() {
    // 1. Write a kernel in the builder DSL: y[i] = a * x[i] + y[i],
    //    with a warp-uniform coefficient loaded from a parameter block.
    let mut b = KernelBuilder::new("saxpy");
    let tid = b.s2r(SReg::TidX);
    let ctaid = b.s2r(SReg::CtaIdX);
    let ntid = b.s2r(SReg::NTidX);
    let gid = b.imad(ctaid.into(), ntid.into(), tid.into());
    let off = b.shl(gid.into(), Operand::Imm(2));
    // The coefficient address is uniform: a *scalar* memory load.
    let pa = b.mov(Operand::Imm(0x100));
    let a = b.ld_global(pa, 0);
    let xa = b.iadd(off.into(), Operand::Imm(0x1_0000));
    let ya = b.iadd(off.into(), Operand::Imm(0x2_0000));
    let x = b.ld_global(xa, 0);
    let y = b.ld_global(ya, 0);
    let r = b.ffma(x.into(), a.into(), y.into());
    b.st_global(ya, r, 0);
    b.exit();
    let kernel = b.build().expect("kernel is valid");

    // Print it as assembly.
    println!("{}", gscalar::isa::asm::print_kernel(&kernel));

    // 2. Prepare inputs.
    let n = 16 * 256u32;
    let mut mem = GlobalMemory::new();
    mem.write_f32(0x100, 2.0);
    for i in 0..n {
        mem.write_f32(0x1_0000 + u64::from(i) * 4, i as f32);
        mem.write_f32(0x2_0000 + u64::from(i) * 4, 1.0);
    }
    let workload = Workload::new("saxpy", "SAXPY", kernel, LaunchConfig::linear(16, 256), mem);

    // 3. Run on every architecture the paper evaluates.
    let runner = Runner::new(GpuConfig::gtx480());
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "architecture", "cycles", "IPC", "power(W)", "IPC/W", "scalar%"
    );
    for arch in Arch::ALL {
        let r = runner.run(&workload, arch);
        println!(
            "{:<24} {:>9} {:>9.1} {:>9.2} {:>10.3} {:>7.1}%",
            arch.label(),
            r.stats.cycles,
            r.stats.ipc(),
            r.power.total_w(),
            r.ipc_per_watt(),
            100.0 * r.stats.instr.executed_scalar as f64 / r.stats.instr.warp_instrs as f64,
        );
    }
}
