//! Divergent scalar execution, step by step (paper Section 4.2).
//!
//! Reproduces the Figure 7(b) scenario: a register written under one
//! active mask is a *divergent scalar* only for readers with the same
//! mask; the other path of the branch sees stale encoding bits and must
//! execute vector-wide.
//!
//! ```sh
//! cargo run --release --example divergent_scalar
//! ```

use gscalar::compress::regmeta::MetaConfig;
use gscalar::compress::{full_mask, RegFileMeta};
use gscalar::isa::{CmpOp, KernelBuilder, LaunchConfig, Operand, SReg};
use gscalar::sim::memory::GlobalMemory;
use gscalar::sim::{ArchConfig, Gpu, GpuConfig};

fn main() {
    // ---- The hardware view: EBR/BVR state transitions -------------
    println!("== Register-metadata view (Figure 7b) ==");
    let mut rf = RegFileMeta::new(4, MetaConfig::g_scalar(32));
    let r2 = 0;

    // A divergent instruction writes r2 = 7 in lanes 0..8.
    let mask_a = 0x0000_00FFu64;
    let values = vec![7u32; 32];
    let w = rf.write(r2, &values, mask_a);
    println!(
        "divergent write under mask {mask_a:#010x}: enc={:?}, D=1, BVR holds the mask",
        w.enc
    );

    // Same-mask reader: divergent scalar.
    let r = rf.read(r2, mask_a);
    println!(
        "read with the same mask      → scalar eligible: {}",
        r.scalar
    );

    // Other-path reader (complementary mask): encoding invalid.
    let mask_b = !mask_a & full_mask(32);
    let r = rf.read(r2, mask_b);
    println!(
        "read with the other mask     → scalar eligible: {}",
        r.scalar
    );

    // A non-divergent scalar write is valid for any reader mask.
    rf.write(r2, &[42u32; 32], full_mask(32));
    let r = rf.read(r2, mask_b);
    println!(
        "after a non-divergent write  → scalar eligible: {}\n",
        r.scalar
    );

    // ---- The end-to-end view: a divergent kernel -------------------
    println!("== End-to-end view ==");
    let mut b = KernelBuilder::new("divergent");
    let tid = b.s2r(SReg::TidX);
    let omega = b.mov(Operand::imm_f32(1.85)); // uniform parameter
    let acc = b.mov_f32(0.0);
    let p = b.isetp(CmpOp::Lt, tid.into(), Operand::Imm(8));
    b.if_else(
        p.into(),
        |b| {
            // Divergent path A: a chain on the uniform omega.
            // Every op reads scalar operands under one stable mask →
            // divergent-scalar eligible.
            let c1 = b.fmul(omega.into(), Operand::imm_f32(0.5));
            let c2 = b.fadd(c1.into(), Operand::imm_f32(0.1));
            let c3 = b.fmul(c2.into(), c1.into());
            b.fadd_to(acc, acc.into(), c3.into());
        },
        |b| {
            // Divergent path B: per-lane math → vector execution.
            let t = b.i2f(tid.into());
            let u = b.fmul(t.into(), Operand::imm_f32(0.25));
            b.fadd_to(acc, acc.into(), u.into());
        },
    );
    let off = b.shl(tid.into(), Operand::Imm(2));
    let addr = b.iadd(off.into(), Operand::Imm(0x1_0000));
    b.st_global(addr, acc, 0);
    b.exit();
    let kernel = b.build().expect("kernel is valid");

    let run = |arch: ArchConfig| {
        let mut gpu = Gpu::new(GpuConfig::test_small(), arch);
        let mut mem = GlobalMemory::new();
        gpu.run(&kernel, LaunchConfig::linear(4, 64), &mut mem)
    };
    let base = run(ArchConfig::baseline());
    let mut gs = ArchConfig::baseline();
    gs.name = "G-Scalar".into();
    gs.scalar_alu = true;
    gs.scalar_sfu = true;
    gs.scalar_mem = true;
    gs.scalar_divergent = true;
    gs.compression = true;
    gs.extra_latency = 3;
    let gsr = run(gs);

    println!(
        "divergent instructions:        {} of {} ({:.0}%)",
        base.instr.divergent_instrs,
        base.instr.warp_instrs,
        100.0 * base.divergent_fraction()
    );
    println!(
        "divergent-scalar eligible:     {}",
        base.instr.eligible_divergent
    );
    println!(
        "executed scalar under G-Scalar: {} (baseline: {})",
        gsr.instr.executed_scalar, base.instr.executed_scalar
    );
    println!(
        "ALU lane-ops: baseline {} → G-Scalar {} ({} gated)",
        base.exec.int_lane_ops + base.exec.fp_lane_ops,
        gsr.exec.int_lane_ops + gsr.exec.fp_lane_ops,
        gsr.exec.fp_lane_ops_saved + gsr.exec.int_lane_ops_saved
    );
}
