// Per-thread |x - 128| with a divergent if/else, stored to 0x30000.
.kernel reduce_abs regs=8
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    S2R R2, SR_NTID.X
    IMAD R3, R1, R2, R0
    ISUB R4, R3, 128
    ISETP.LT P0, R4, 0
    @!P0 BRA keep
    ISUB R4, 0, R4             // negate on the divergent path
keep:
    SHL R5, R3, 2
    IADD R6, R5, 0x30000
    ST.GLOBAL [R6], R4
    EXIT
