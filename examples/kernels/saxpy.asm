// SAXPY: y[i] = a * x[i] + y[i]
// Buffers: a at 0x100 (f32), x at 0x10000, y at 0x20000.
.kernel saxpy regs=12
    S2R R0, SR_TID.X
    S2R R1, SR_CTAID.X
    S2R R2, SR_NTID.X
    IMAD R3, R1, R2, R0        // global thread id
    SHL R4, R3, 2              // byte offset
    MOV R5, 0x100              // &a (warp-uniform: scalar load)
    LD.GLOBAL R6, [R5]
    IADD R7, R4, 0x10000       // &x[i]
    IADD R8, R4, 0x20000       // &y[i]
    LD.GLOBAL R9, [R7]
    LD.GLOBAL R10, [R8]
    FFMA R11, R6, R9, R10
    ST.GLOBAL [R8], R11
    EXIT
