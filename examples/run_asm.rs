//! Assemble, analyze, and run a kernel from a `.asm` file.
//!
//! ```sh
//! cargo run --release --example run_asm -- examples/kernels/saxpy.asm
//! cargo run --release --example run_asm -- examples/kernels/reduce_abs.asm 8 128
//! ```
//!
//! Arguments: `<file.asm> [grid_ctas] [block_threads]`.

use gscalar::core::{Arch, Runner, Workload};
use gscalar::isa::{asm, LaunchConfig};
use gscalar::sim::memory::GlobalMemory;
use gscalar::sim::GpuConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: run_asm <file.asm> [grid_ctas] [block_threads]");
        std::process::exit(1);
    };
    let grid: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let block: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let kernel = match asm::parse_kernel(&text) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "assembled `{}`: {} instructions, {} registers, {} basic blocks",
        kernel.name(),
        kernel.len(),
        kernel.num_regs(),
        kernel.cfg().blocks().len()
    );
    for (pc, i) in kernel.instrs().iter().enumerate() {
        let reconv = kernel
            .reconvergence_pc(pc)
            .map_or(String::new(), |r| format!("   // reconverges at {r}"));
        println!("{pc:4}: {i}{reconv}");
    }

    // Seed some inputs so the standard sample kernels do real work.
    let mut mem = GlobalMemory::new();
    mem.write_f32(0x100, 2.0);
    for i in 0..(grid * block) {
        mem.write_f32(0x1_0000 + u64::from(i) * 4, i as f32);
        mem.write_f32(0x2_0000 + u64::from(i) * 4, 1.0);
    }

    let w = Workload::new(
        kernel.name().to_owned(),
        "ASM",
        kernel,
        LaunchConfig::linear(grid, block),
        mem,
    );
    let runner = Runner::new(GpuConfig::gtx480());
    println!();
    for arch in Arch::ALL {
        let r = runner.run(&w, arch);
        let s = &r.stats;
        println!(
            "{:<24} cycles {:>8}  IPC {:>7.1}  IPC/W {:>7.4}  scalar-exec {:>5.1}%  divergent {:>5.1}%",
            arch.label(),
            s.cycles,
            s.ipc(),
            r.ipc_per_watt(),
            100.0 * s.instr.executed_scalar as f64 / s.instr.warp_instrs as f64,
            100.0 * s.divergent_fraction(),
        );
    }
}
