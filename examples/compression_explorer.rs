//! Explore the byte-wise compression scheme against BDI on
//! characteristic register-value patterns (paper Sections 2.2 and 3.1).
//!
//! ```sh
//! cargo run --release --example compression_explorer
//! ```

use gscalar::compress::{bdi, bytewise, full_mask};

fn show(name: &str, values: &[u32]) {
    let enc = bytewise::encode(values, full_mask(values.len()));
    let ours = bytewise::compress(values);
    let b = bdi::compress(values);
    println!(
        "{:<28} enc={:<7} ours {:>4} B (x{:>5.2})   BDI[{:<8}] {:>4} B (x{:>5.2})",
        name,
        enc.to_string(),
        ours.size_bytes(),
        (values.len() * 4) as f64 / ours.size_bytes() as f64,
        b.mode.to_string(),
        b.bytes,
        b.ratio(),
    );
}

fn main() {
    println!("32-lane vector register = 128 raw bytes\n");

    // The paper's running example (Section 2.2): coalesced addresses.
    let addresses: Vec<u32> = (0..32).map(|i| 0xC040_39C0 + i * 8).collect();
    show("coalesced addresses", &addresses);

    // A warp-uniform value (kernel parameter, loop bound, ...).
    show("warp-uniform scalar", &[0xDEAD_BEEF; 32]);

    // All zero (freshly cleared accumulators).
    show("all zero", &[0u32; 32]);

    // Clustered floats: the exponent byte matches, mantissas differ.
    let floats: Vec<u32> = (0..32)
        .map(|i| (1.0f32 + i as f32 * 0.01).to_bits())
        .collect();
    show("clustered f32", &floats);

    // Small integers (indices, flags).
    let small: Vec<u32> = (0..32).map(|i| (i * 37) % 251).collect();
    show("small integers", &small);

    // Section 3.1's caveat: values adjacent in magnitude whose hex
    // representations differ widely — BDI wins here.
    let carry: Vec<u32> = (0..32)
        .map(|i| if i % 2 == 0 { 0x0001_0000 } else { 0x0000_FFFF })
        .collect();
    show("carry-boundary pair", &carry);

    // Incompressible noise.
    let noise: Vec<u32> = (0..32u32)
        .map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(7))
        .collect();
    show("hash noise", &noise);

    println!();
    // Divergent comparison: inactive lanes are ignored via broadcast.
    let mut mixed = vec![7u32; 32];
    for (lane, v) in mixed.iter_mut().enumerate() {
        if lane % 3 == 0 {
            *v = 99;
        }
    }
    let mask: u64 = (0..32)
        .filter(|l| l % 3 != 0)
        .fold(0u64, |m, l| m | (1 << l));
    println!(
        "mixed values, full mask      → {:?}",
        bytewise::encode(&mixed, full_mask(32))
    );
    println!(
        "same values, divergent mask  → {:?} (active lanes all hold 7)",
        bytewise::encode(&mixed, mask)
    );
}
